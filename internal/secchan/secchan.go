// Package secchan provides the authenticated, encrypted transport that
// stands in for the paper's IPsec/IKE layer.
//
// DisCFS relies on IPsec for exactly two properties (paper §4.3, §5):
//
//  1. During connection setup (IKE), the server learns the client's
//     public key and can associate it with the connection.
//  2. Subsequent NFS requests on that connection are integrity- and
//     confidentiality-protected, so they can be attributed to that key.
//
// secchan provides both with modern stdlib cryptography: a SIGMA-style
// authenticated key exchange (X25519 ephemeral ECDH, Ed25519 identity
// signatures, HKDF-SHA256 key derivation) followed by an AES-256-GCM
// record layer with strictly sequenced nonces (replay of a record fails
// authentication). The server's Conn exposes PeerID — the client's
// canonical KeyNote principal — which the RPC layer passes to the DisCFS
// policy engine, exactly the role IKE plays in the prototype.
package secchan

import (
	"bufio"
	"context"
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"discfs/internal/bufpool"
	"discfs/internal/keynote"
)

// Process-global server-role channel counters (like the buffer pool,
// the channel layer is shared process state). The operations plane
// samples them into the metrics registry at scrape time.
var (
	statHandshakes atomic.Uint64
	statFailures   atomic.Uint64
	statRejected   atomic.Uint64
	statAccepted   atomic.Uint64
	statActive     atomic.Int64
)

// Stats is a snapshot of the server-role channel counters.
type Stats struct {
	// Handshakes counts responder handshakes attempted.
	Handshakes uint64
	// Failures counts handshakes that failed before authentication
	// completed (protocol errors, bad signatures).
	Failures uint64
	// Rejected counts authenticated peers refused by Authorize
	// (including revoked keys).
	Rejected uint64
	// Accepted counts sessions established.
	Accepted uint64
	// Active is the number of currently open server-role sessions.
	Active int64
}

// ReadStats samples the process-global server-role counters.
func ReadStats() Stats {
	return Stats{
		Handshakes: statHandshakes.Load(),
		Failures:   statFailures.Load(),
		Rejected:   statRejected.Load(),
		Accepted:   statAccepted.Load(),
		Active:     statActive.Load(),
	}
}

// protocol constants.
const (
	// protoVersion 2 added the mandatory ServerAccept verdict record;
	// version-1 peers fail cleanly at the version check instead of
	// desynchronizing on the extra record.
	protoVersion = 2
	nonceLen     = 32
	// maxRecord bounds one encrypted record's plaintext. Sized to carry
	// a maximal negotiated NFS transfer (1 MiB) plus its RPC framing in
	// a single record, so a large READ/WRITE costs one seal and one
	// socket write instead of being chopped into 64 KiB records.
	maxRecord = (1 << 20) + 4096
	// maxHandshakeMsg bounds handshake messages.
	maxHandshakeMsg = 4096
)

// Handshake message types.
const (
	msgClientHello = 1
	msgServerHello = 2
	msgClientAuth  = 3
)

// Server-accept status codes, carried in the final handshake record so
// the initiator learns why it was refused (the IKE notification payload
// of the paper's setting).
const (
	acceptOK      = 0
	acceptReject  = 1
	acceptRevoked = 2
)

// Errors.
var (
	// ErrHandshake indicates a failed key exchange or peer authentication.
	ErrHandshake = errors.New("secchan: handshake failed")
	// ErrRecord indicates record-layer corruption, tampering or replay.
	ErrRecord = errors.New("secchan: record authentication failed")
	// ErrRejected indicates the server's Authorize callback refused the peer.
	ErrRejected = errors.New("secchan: peer rejected")
	// ErrKeyRevoked is the Authorize rejection for revoked keys. Servers
	// return (or wrap) it from Authorize so the initiator can distinguish
	// revocation from other rejections.
	ErrKeyRevoked = errors.New("secchan: peer key revoked")
)

// Config holds the local identity and policy hooks.
type Config struct {
	// Identity is the local key pair (the same Ed25519 identity used to
	// sign KeyNote credentials).
	Identity *keynote.KeyPair
	// Authorize, if set, decides whether to accept an authenticated
	// peer. The DisCFS server rejects revoked keys here.
	Authorize func(peer keynote.Principal) error
	// HandshakeTimeout bounds the key exchange (default 10s).
	HandshakeTimeout time.Duration
	// RekeyRecords is the security-association lifetime in records per
	// direction: after this many records the traffic key is ratcheted
	// forward (HKDF of the old key), as IPsec re-keys SAs. Both ends of
	// a connection must use the same value. 0 means DefaultRekeyRecords.
	RekeyRecords uint64
}

// DefaultRekeyRecords is the default SA lifetime in records.
const DefaultRekeyRecords = 1 << 20

func (c *Config) rekeyRecords() uint64 {
	if c.RekeyRecords > 0 {
		return c.RekeyRecords
	}
	return DefaultRekeyRecords
}

func (c *Config) timeout() time.Duration {
	if c.HandshakeTimeout > 0 {
		return c.HandshakeTimeout
	}
	return 10 * time.Second
}

// Conn is an established secure channel. It implements net.Conn and
// sunrpc.PeerIdentifier.
type Conn struct {
	raw    net.Conn
	br     *bufio.Reader // buffered raw reads: one syscall per record
	peer   keynote.Principal
	server bool // responder side (counts toward active sessions)

	rekeyEvery uint64

	wmu   sync.Mutex
	wseq  uint64
	waead cipher.AEAD
	wkey  []byte // current write traffic key (ratcheted)
	wbuf  []byte // reusable record assembly buffer
	werr  error  // sticky after close: the retained wbuf is recycled

	rmu     sync.Mutex
	rseq    uint64
	raead   cipher.AEAD
	rkey    []byte // current read traffic key (ratcheted)
	rbuf    []byte // decrypted bytes not yet delivered (aliases rawbuf)
	rawbuf  []byte // reusable ciphertext buffer; records open in place
	readErr error

	closeOnce sync.Once
}

// recycle returns the retained record buffers to the pool and poisons
// both directions; called on close and on handshake failure so churning
// sessions do not grow bufpool.Outstanding.
func (c *Conn) recycle() {
	c.wmu.Lock()
	bufpool.Put(c.wbuf)
	c.wbuf = nil
	if c.werr == nil {
		c.werr = net.ErrClosed
	}
	c.wmu.Unlock()
	c.rmu.Lock()
	bufpool.Put(c.rawbuf)
	c.rawbuf = nil
	c.rbuf = nil
	if c.readErr == nil {
		c.readErr = net.ErrClosed
	}
	c.rmu.Unlock()
}

// ratchet derives the next traffic key from the current one, giving the
// channel forward secrecy across SA lifetimes: compromise of a current
// key does not reveal records sealed under earlier keys.
func ratchet(key []byte) []byte {
	return hkdf(key, []byte("discfs-secchan"), "rekey", 32)
}

// maybeRekeyWrite ratchets the write key at SA-lifetime boundaries.
// Caller holds wmu.
func (c *Conn) maybeRekeyWrite(seq uint64) error {
	if seq == 0 || c.rekeyEvery == 0 || seq%c.rekeyEvery != 0 {
		return nil
	}
	c.wkey = ratchet(c.wkey)
	aead, err := newAEAD(c.wkey)
	if err != nil {
		return err
	}
	c.waead = aead
	return nil
}

// maybeRekeyRead mirrors maybeRekeyWrite for the receive direction.
func (c *Conn) maybeRekeyRead(seq uint64) error {
	if seq == 0 || c.rekeyEvery == 0 || seq%c.rekeyEvery != 0 {
		return nil
	}
	c.rkey = ratchet(c.rkey)
	aead, err := newAEAD(c.rkey)
	if err != nil {
		return err
	}
	c.raead = aead
	return nil
}

// PeerID returns the authenticated peer principal (canonical form).
func (c *Conn) PeerID() string { return string(c.peer) }

// Peer returns the authenticated peer principal.
func (c *Conn) Peer() keynote.Principal { return c.peer }

// ---- handshake wire helpers ----

func writeMsg(w io.Writer, msgType byte, fields ...[]byte) error {
	var body []byte
	body = append(body, msgType)
	for _, f := range fields {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(f)))
		body = append(body, l[:]...)
		body = append(body, f...)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

func readMsg(r io.Reader, wantType byte, nFields int) ([][]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxHandshakeMsg {
		return nil, fmt.Errorf("%w: message size %d", ErrHandshake, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if body[0] != wantType {
		return nil, fmt.Errorf("%w: message type %d, want %d", ErrHandshake, body[0], wantType)
	}
	fields := make([][]byte, 0, nFields)
	rest := body[1:]
	for i := 0; i < nFields; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated message", ErrHandshake)
		}
		l := binary.BigEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint32(len(rest)) < l {
			return nil, fmt.Errorf("%w: truncated field", ErrHandshake)
		}
		fields = append(fields, rest[:l])
		rest = rest[l:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrHandshake)
	}
	return fields, nil
}

// hkdf implements HKDF-SHA256 (RFC 5869) extract-and-expand.
func hkdf(secret, salt []byte, info string, n int) []byte {
	ext := hmac.New(sha256.New, salt)
	ext.Write(secret)
	prk := ext.Sum(nil)
	var out []byte
	var prev []byte
	for counter := byte(1); len(out) < n; counter++ {
		h := hmac.New(sha256.New, prk)
		h.Write(prev)
		h.Write([]byte(info))
		h.Write([]byte{counter})
		prev = h.Sum(nil)
		out = append(out, prev...)
	}
	return out[:n]
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	blk, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(blk)
}

// identityFromWire validates an Ed25519 public key from the handshake and
// returns its canonical principal.
func identityFromWire(pub []byte) (keynote.Principal, ed25519.PublicKey, error) {
	if len(pub) != ed25519.PublicKeySize {
		return "", nil, fmt.Errorf("%w: identity key is %d bytes", ErrHandshake, len(pub))
	}
	p := keynote.Principal("ed25519-hex:" + fmt.Sprintf("%x", pub))
	return p, ed25519.PublicKey(pub), nil
}

// transcript binds the signatures to every public handshake value.
func transcript(role string, fields ...[]byte) []byte {
	h := sha256.New()
	h.Write([]byte("discfs-secchan-v1:" + role))
	for _, f := range fields {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(f)))
		h.Write(l[:])
		h.Write(f)
	}
	return h.Sum(nil)
}

// edSigner extracts the ed25519 private key from a keynote KeyPair.
func edSigner(id *keynote.KeyPair) (ed25519.PrivateKey, ed25519.PublicKey, error) {
	priv, ok := id.Signer().(ed25519.PrivateKey)
	if !ok {
		return nil, nil, fmt.Errorf("%w: identity must be an Ed25519 key", ErrHandshake)
	}
	return priv, priv.Public().(ed25519.PublicKey), nil
}

// Client performs the initiator handshake over raw.
func Client(raw net.Conn, cfg Config) (*Conn, error) {
	if cfg.Identity == nil {
		return nil, fmt.Errorf("%w: no identity", ErrHandshake)
	}
	priv, pub, err := edSigner(cfg.Identity)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(cfg.timeout())
	_ = raw.SetDeadline(deadline)
	defer raw.SetDeadline(time.Time{})
	br := bufio.NewReaderSize(raw, 64<<10)

	curve := ecdh.X25519()
	eph, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	nonceC := make([]byte, nonceLen)
	if _, err := rand.Read(nonceC); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}

	// -> ClientHello{version, ephC, nonceC}
	if err := writeMsg(raw, msgClientHello, []byte{protoVersion}, eph.PublicKey().Bytes(), nonceC); err != nil {
		return nil, err
	}

	// <- ServerHello{ephS, nonceS, identityS, sigS}
	fields, err := readMsg(br, msgServerHello, 4)
	if err != nil {
		return nil, err
	}
	ephSBytes, nonceS, idS, sigS := fields[0], fields[1], fields[2], fields[3]
	peer, peerPub, err := identityFromWire(idS)
	if err != nil {
		return nil, err
	}
	serverTranscript := transcript("server", eph.PublicKey().Bytes(), nonceC, ephSBytes, nonceS, idS)
	if !ed25519.Verify(peerPub, serverTranscript, sigS) {
		return nil, fmt.Errorf("%w: server signature invalid", ErrHandshake)
	}
	ephS, err := curve.NewPublicKey(ephSBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: bad server ephemeral: %v", ErrHandshake, err)
	}
	shared, err := eph.ECDH(ephS)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	salt := transcript("keys", eph.PublicKey().Bytes(), nonceC, ephSBytes, nonceS)
	keys := hkdf(shared, salt, "discfs-secchan keys", 64)
	c2s, err := newAEAD(keys[:32])
	if err != nil {
		return nil, err
	}
	s2c, err := newAEAD(keys[32:])
	if err != nil {
		return nil, err
	}
	conn := &Conn{
		raw: raw, br: br, waead: c2s, raead: s2c,
		wkey: keys[:32], rkey: keys[32:],
		rekeyEvery: cfg.rekeyRecords(),
	}

	// -> ClientAuth{identityC, sigC}, sent through the record layer so
	// the client identity is not visible on the wire (SIGMA-I).
	clientTranscript := transcript("client", eph.PublicKey().Bytes(), nonceC, ephSBytes, nonceS, pub)
	sigC := ed25519.Sign(priv, clientTranscript)
	var authMsg []byte
	authMsg = append(authMsg, byte(len(pub)))
	authMsg = append(authMsg, pub...)
	authMsg = append(authMsg, sigC...)
	if err := conn.writeRecord(authMsg); err != nil {
		conn.recycle()
		return nil, err
	}

	// <- ServerAccept{status, reason}: the server's authorization verdict,
	// through the record layer. Without it a rejected client would only
	// see its first RPC fail with a broken connection.
	verdict, err := conn.readRecord()
	if err != nil {
		conn.recycle()
		return nil, fmt.Errorf("%w: awaiting server accept: %v", ErrHandshake, err)
	}
	if len(verdict) < 1 {
		conn.recycle()
		return nil, fmt.Errorf("%w: empty server accept", ErrHandshake)
	}
	switch reason := string(verdict[1:]); verdict[0] {
	case acceptOK:
	case acceptRevoked:
		conn.recycle()
		if reason == ErrKeyRevoked.Error() {
			return nil, fmt.Errorf("%w: %w", ErrRejected, ErrKeyRevoked)
		}
		return nil, fmt.Errorf("%w: %w: %s", ErrRejected, ErrKeyRevoked, reason)
	default:
		conn.recycle()
		return nil, fmt.Errorf("%w: %s", ErrRejected, reason)
	}
	conn.peer = peer
	return conn, nil
}

// Server performs the responder handshake over raw.
func Server(raw net.Conn, cfg Config) (*Conn, error) {
	statHandshakes.Add(1)
	conn, err := serverHandshake(raw, cfg)
	switch {
	case err == nil:
		statAccepted.Add(1)
		statActive.Add(1)
	case errors.Is(err, ErrRejected):
		statRejected.Add(1)
	default:
		statFailures.Add(1)
	}
	return conn, err
}

// serverHandshake is the responder handshake body; Server wraps it with
// the operations-plane counters.
func serverHandshake(raw net.Conn, cfg Config) (*Conn, error) {
	if cfg.Identity == nil {
		return nil, fmt.Errorf("%w: no identity", ErrHandshake)
	}
	priv, pub, err := edSigner(cfg.Identity)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(cfg.timeout())
	_ = raw.SetDeadline(deadline)
	defer raw.SetDeadline(time.Time{})
	br := bufio.NewReaderSize(raw, 64<<10)

	// <- ClientHello
	fields, err := readMsg(br, msgClientHello, 3)
	if err != nil {
		return nil, err
	}
	ver, ephCBytes, nonceC := fields[0], fields[1], fields[2]
	if len(ver) != 1 || ver[0] != protoVersion {
		return nil, fmt.Errorf("%w: protocol version %v", ErrHandshake, ver)
	}
	curve := ecdh.X25519()
	ephC, err := curve.NewPublicKey(ephCBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: bad client ephemeral: %v", ErrHandshake, err)
	}
	eph, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	nonceS := make([]byte, nonceLen)
	if _, err := rand.Read(nonceS); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}

	// -> ServerHello{ephS, nonceS, identityS, sigS}
	serverTranscript := transcript("server", ephCBytes, nonceC, eph.PublicKey().Bytes(), nonceS, pub)
	sigS := ed25519.Sign(priv, serverTranscript)
	if err := writeMsg(raw, msgServerHello, eph.PublicKey().Bytes(), nonceS, pub, sigS); err != nil {
		return nil, err
	}

	shared, err := eph.ECDH(ephC)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	salt := transcript("keys", ephCBytes, nonceC, eph.PublicKey().Bytes(), nonceS)
	keys := hkdf(shared, salt, "discfs-secchan keys", 64)
	c2s, err := newAEAD(keys[:32])
	if err != nil {
		return nil, err
	}
	s2c, err := newAEAD(keys[32:])
	if err != nil {
		return nil, err
	}
	conn := &Conn{
		raw: raw, br: br, waead: s2c, raead: c2s,
		wkey: keys[32:], rkey: keys[:32],
		rekeyEvery: cfg.rekeyRecords(),
		server:     true,
	}

	// <- ClientAuth (first record on the channel).
	authMsg, err := conn.readRecord()
	if err != nil {
		conn.recycle()
		return nil, fmt.Errorf("%w: client auth: %v", ErrHandshake, err)
	}
	if len(authMsg) < 1 {
		conn.recycle()
		return nil, fmt.Errorf("%w: empty client auth", ErrHandshake)
	}
	idLen := int(authMsg[0])
	if len(authMsg) < 1+idLen+ed25519.SignatureSize {
		conn.recycle()
		return nil, fmt.Errorf("%w: short client auth", ErrHandshake)
	}
	idC := authMsg[1 : 1+idLen]
	sigC := authMsg[1+idLen : 1+idLen+ed25519.SignatureSize]
	peer, peerPub, err := identityFromWire(idC)
	if err != nil {
		conn.recycle()
		return nil, err
	}
	clientTranscript := transcript("client", ephCBytes, nonceC, eph.PublicKey().Bytes(), nonceS, idC)
	if !ed25519.Verify(peerPub, clientTranscript, sigC) {
		conn.recycle()
		return nil, fmt.Errorf("%w: client signature invalid", ErrHandshake)
	}
	if cfg.Authorize != nil {
		if err := cfg.Authorize(peer); err != nil {
			code := byte(acceptReject)
			if errors.Is(err, ErrKeyRevoked) {
				code = acceptRevoked
			}
			verdict := append([]byte{code}, err.Error()...)
			_ = conn.writeRecord(verdict) // best effort; we are closing anyway
			conn.recycle()
			return nil, fmt.Errorf("%w: %v", ErrRejected, err)
		}
	}
	// -> ServerAccept{OK}.
	if err := conn.writeRecord([]byte{acceptOK}); err != nil {
		conn.recycle()
		return nil, err
	}
	conn.peer = peer
	return conn, nil
}

// ---- record layer ----

// sealNonce builds the 12-byte GCM nonce from a sequence number.
func sealNonce(seq uint64) []byte {
	var n [12]byte
	binary.BigEndian.PutUint64(n[4:], seq)
	return n[:]
}

// writeRecord encrypts and sends one record: the 4-byte length header
// and the ciphertext leave in a single Write (one segment on the wire).
func (c *Conn) writeRecord(plaintext []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.werr != nil {
		return c.werr
	}
	seq := c.wseq
	c.wseq++
	if err := c.maybeRekeyWrite(seq); err != nil {
		return err
	}
	var aad [8]byte
	binary.BigEndian.PutUint64(aad[:], seq)
	need := 4 + len(plaintext) + c.waead.Overhead()
	if cap(c.wbuf) < need {
		bufpool.Put(c.wbuf)
		c.wbuf = bufpool.Get(need)[:0]
	}
	msg := c.waead.Seal(c.wbuf[:4], sealNonce(seq), plaintext, aad[:])
	binary.BigEndian.PutUint32(msg[:4], uint32(len(msg)-4))
	_, err := c.raw.Write(msg)
	return err
}

// readRecord receives and decrypts one record. Caller holds c.rmu or is
// single-threaded (handshake).
//
// The ciphertext lands in the connection's retained rawbuf and is
// opened in place, so the steady-state read path allocates nothing per
// record. The returned plaintext aliases rawbuf: it is valid only until
// the next readRecord, which Read respects by fully draining rbuf
// before reading the next record.
func (c *Conn) readRecord() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxRecord+uint32(c.raead.Overhead()) {
		return nil, fmt.Errorf("%w: record of %d bytes", ErrRecord, n)
	}
	if cap(c.rawbuf) < int(n) {
		bufpool.Put(c.rawbuf)
		c.rawbuf = bufpool.Get(int(n))
	}
	ct := c.rawbuf[:n]
	if _, err := io.ReadFull(c.br, ct); err != nil {
		return nil, err
	}
	seq := c.rseq
	c.rseq++
	if err := c.maybeRekeyRead(seq); err != nil {
		return nil, err
	}
	var aad [8]byte
	binary.BigEndian.PutUint64(aad[:], seq)
	pt, err := c.raead.Open(ct[:0], sealNonce(seq), ct, aad[:])
	if err != nil {
		// Tampering or replay: a replayed record carries a stale
		// sequence number and fails authentication here.
		return nil, ErrRecord
	}
	return pt, nil
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.rbuf) == 0 {
		if c.readErr != nil {
			return 0, c.readErr
		}
		pt, err := c.readRecord()
		if err != nil {
			c.readErr = err
			return 0, err
		}
		c.rbuf = pt
	}
	n := copy(p, c.rbuf)
	c.rbuf = c.rbuf[n:]
	return n, nil
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > maxRecord {
			n = maxRecord
		}
		if err := c.writeRecord(p[:n]); err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

// Close implements net.Conn. The raw transport closes first (releasing
// any reader blocked in a record read), then the retained record
// buffers return to the pool.
func (c *Conn) Close() error {
	err := c.raw.Close()
	c.closeOnce.Do(func() {
		if c.server {
			statActive.Add(-1)
		}
		c.recycle()
	})
	return err
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.raw.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

// Listener wraps a net.Listener, performing the server handshake on each
// accepted connection.
type Listener struct {
	ln  net.Listener
	cfg Config
}

// NewListener wraps ln.
func NewListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{ln: ln, cfg: cfg}
}

// Accept waits for a connection and completes the handshake. Handshake
// failures are reported per-connection; Accept retries on the next
// connection rather than tearing down the listener.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		raw, err := l.ln.Accept()
		if err != nil {
			return nil, err
		}
		conn, err := Server(raw, l.cfg)
		if err != nil {
			raw.Close()
			continue // a hostile peer must not kill the listener
		}
		return conn, nil
	}
}

// Close implements net.Listener.
func (l *Listener) Close() error { return l.ln.Close() }

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Dial connects to addr over TCP and performs the client handshake.
func Dial(addr string, cfg Config) (*Conn, error) {
	return DialContext(context.Background(), addr, cfg)
}

// DialContext is Dial honoring ctx for connection establishment and the
// handshake: cancellation or an expired deadline aborts both. (Client
// itself bounds the handshake with cfg.timeout(); a ctx deadline tighter
// than that clamps it, and cancellation interrupts in-flight handshake
// I/O via a transport-deadline watchdog.)
func DialContext(ctx context.Context, addr string, cfg Config) (*Conn, error) {
	var d net.Dialer
	raw, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	// Clamp the handshake timeout to the ctx deadline so Client's own
	// SetDeadline enforces it even if the watchdog loses the race.
	if deadline, ok := ctx.Deadline(); ok {
		if remain := time.Until(deadline); remain < cfg.timeout() {
			if remain <= 0 {
				raw.Close()
				return nil, ctx.Err()
			}
			cfg.HandshakeTimeout = remain
		}
	}
	// A canceled context must interrupt the blocking handshake reads.
	// The poisoned channel joins the callback so a late poison cannot
	// land after the deadline is judged below.
	poisoned := make(chan struct{})
	stop := context.AfterFunc(ctx, func() {
		raw.SetDeadline(time.Unix(1, 0)) // unblock in-flight I/O
		close(poisoned)
	})
	conn, err := Client(raw, cfg)
	// Retire the watchdog before judging the result, so it cannot poison
	// a successfully established connection with a past deadline.
	if !stop() {
		<-poisoned
	}
	if err != nil {
		raw.Close()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		conn.Close()
		return nil, err
	}
	_ = raw.SetDeadline(time.Time{})
	return conn, nil
}
