package xdr

import (
	"testing"
)

// FuzzDecoder drives the decoder's full method surface over arbitrary
// bytes: whatever the input, decoding must never panic, never hand out
// bytes beyond the buffer, and the sticky error must make every
// post-error call return a zero value.
func FuzzDecoder(f *testing.F) {
	// Seed with valid encodes of every encodable shape.
	e := NewEncoder()
	e.Uint32(42)
	e.Int32(-7)
	e.Uint64(1 << 40)
	e.Bool(true)
	e.Opaque([]byte("hello, xdr"))
	e.OpaqueFixed([]byte{1, 2, 3})
	e.String("päth/with/ütf8")
	e.OptionalFlag(false)
	f.Add(append([]byte(nil), e.Bytes()...))

	e.Reset()
	e.Uint32(3) // plausible array count
	for i := 0; i < 3; i++ {
		e.String("entry")
		e.Uint32(uint32(i))
	}
	f.Add(append([]byte(nil), e.Bytes()...))

	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})       // huge length prefix
	f.Add([]byte{0x80, 0x00, 0x00, 0x00, 0, 0}) // truncated opaque

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		// A fixed op schedule that exercises every method, twice around,
		// so post-error behavior is covered too.
		for round := 0; round < 2; round++ {
			_ = d.Uint32()
			_ = d.Int64()
			if b := d.Opaque(1 << 16); len(b) > len(data) {
				t.Fatalf("Opaque handed out %d bytes from a %d-byte buffer", len(b), len(data))
			}
			_ = d.Bool()
			_ = d.String(255)
			if n := d.Count(4096); n > 4096 {
				t.Fatalf("Count returned %d beyond its bound", n)
			}
			if b := d.OpaqueFixed(32); b != nil && len(b) != 32 {
				t.Fatalf("OpaqueFixed(32) returned %d bytes", len(b))
			}
			_ = d.OptionalFlag()
		}
		if d.Remaining() < 0 || d.Remaining() > len(data) {
			t.Fatalf("Remaining() = %d of %d", d.Remaining(), len(data))
		}
		if d.Err() != nil {
			// Sticky error: everything must now be zero-valued.
			if v := d.Uint32(); v != 0 {
				t.Fatalf("post-error Uint32 = %d", v)
			}
			if b := d.Opaque(16); b != nil {
				t.Fatalf("post-error Opaque = %v", b)
			}
		}
	})
}

// FuzzDecoderRoundTrip checks encode→decode identity for the structured
// subset the fuzzer can construct from raw inputs.
func FuzzDecoderRoundTrip(f *testing.F) {
	f.Add(uint32(7), int64(-9), []byte("payload"), "name", true)
	f.Add(uint32(0), int64(0), []byte{}, "", false)
	f.Fuzz(func(t *testing.T, a uint32, b int64, op []byte, s string, flag bool) {
		e := NewEncoder()
		e.Uint32(a)
		e.Int64(b)
		e.Opaque(op)
		e.String(s)
		e.Bool(flag)

		d := NewDecoder(e.Bytes())
		if got := d.Uint32(); got != a {
			t.Fatalf("Uint32: %d != %d", got, a)
		}
		if got := d.Int64(); got != b {
			t.Fatalf("Int64: %d != %d", got, b)
		}
		if got := d.Opaque(-1); string(got) != string(op) {
			t.Fatalf("Opaque: %q != %q", got, op)
		}
		if got := d.String(-1); got != s {
			t.Fatalf("String: %q != %q", got, s)
		}
		if got := d.Bool(); got != flag {
			t.Fatalf("Bool: %v != %v", got, flag)
		}
		if err := d.Err(); err != nil {
			t.Fatalf("round trip error: %v", err)
		}
		if d.Remaining() != 0 {
			t.Fatalf("%d bytes left over", d.Remaining())
		}
	})
}
