// Package xdr implements the External Data Representation standard
// (RFC 4506), the wire encoding underneath ONC RPC and NFS.
//
// The Encoder is infallible (it writes to memory); the Decoder uses a
// sticky error so protocol code can decode a whole structure and check
// the error once at the end.
package xdr

import (
	"errors"
	"fmt"
	"math"

	"discfs/internal/bufpool"
)

// ErrShort indicates a decode past the end of the buffer.
var ErrShort = errors.New("xdr: short buffer")

// ErrTooLong indicates a variable-length item exceeding its declared
// maximum.
var ErrTooLong = errors.New("xdr: item exceeds maximum length")

// pad returns the number of zero bytes that pad n to a 4-byte boundary.
func pad(n int) int { return (4 - n%4) % 4 }

// Encoder serializes values into an in-memory XDR stream.
type Encoder struct {
	buf    []byte
	pooled bool
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// NewEncoderWith returns an encoder borrowing buf's backing array
// (contents are discarded), for callers that manage encode buffers
// through the shared pool. Ownership of the array transfers to the
// encoder: when the stream outgrows it, the encoder moves to a larger
// pooled array and recycles the old one. After the stream is consumed,
// Bytes is the buffer to return to the pool.
func NewEncoderWith(buf []byte) *Encoder { return &Encoder{buf: buf[:0], pooled: true} }

// ensure grows a pooled encoder's backing array through bufpool so the
// final buffer keeps a recyclable size class. Plain encoders rely on
// append's growth (their buffers are never pooled).
func (e *Encoder) ensure(n int) {
	if !e.pooled || cap(e.buf)-len(e.buf) >= n {
		return
	}
	l := len(e.buf)
	e.buf = bufpool.Grow(e.buf, l+n)[:l]
}

// Bytes returns the encoded stream. The slice aliases the encoder's
// buffer; it is valid until the next method call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the encoder's contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	e.ensure(4)
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Int32 encodes a 32-bit signed integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 encodes a 64-bit unsigned integer (XDR unsigned hyper).
func (e *Encoder) Uint64(v uint64) {
	e.Uint32(uint32(v >> 32))
	e.Uint32(uint32(v))
}

// Int64 encodes a 64-bit signed integer (XDR hyper).
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Bool encodes an XDR boolean (a 32-bit 0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// zeros backs the append-free zero padding.
var zeros [4]byte

// Opaque encodes variable-length opaque data with its length prefix.
func (e *Encoder) Opaque(b []byte) {
	e.ensure(4 + len(b) + pad(len(b)))
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
	e.buf = append(e.buf, zeros[:pad(len(b))]...)
}

// OpaqueFixed encodes fixed-length opaque data (no length prefix).
func (e *Encoder) OpaqueFixed(b []byte) {
	e.ensure(len(b) + pad(len(b)))
	e.buf = append(e.buf, b...)
	e.buf = append(e.buf, zeros[:pad(len(b))]...)
}

// OpaqueInto encodes the header and padding of an n-byte opaque item and
// returns the payload window for the caller to fill in place — the
// append-free path for payloads produced directly into the stream (one
// copy fewer than building the payload elsewhere and calling Opaque).
// The window is valid until the next Encoder method call.
func (e *Encoder) OpaqueInto(n int) []byte {
	e.Uint32(uint32(n))
	off := e.Reserve(n + pad(n))
	return e.buf[off : off+n]
}

// Reserve appends n zero bytes and returns their offset, for fields
// whose value is known only later (frame headers, patched status words).
func (e *Encoder) Reserve(n int) int {
	e.ensure(n)
	off := len(e.buf)
	if cap(e.buf)-off >= n {
		clear(e.buf[off : off+n])
		e.buf = e.buf[:off+n]
		return off
	}
	e.buf = append(e.buf, make([]byte, n)...)
	return off
}

// PatchUint32 overwrites the 4 bytes at off (previously Reserved or
// encoded) with v.
func (e *Encoder) PatchUint32(off int, v uint32) {
	b := e.buf[off : off+4]
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

// Truncate discards everything encoded after offset n (e.g. a result
// body rolled back when its handler failed).
func (e *Encoder) Truncate(n int) { e.buf = e.buf[:n] }

// String encodes an XDR string.
func (e *Encoder) String(s string) { e.Opaque([]byte(s)) }

// OptionalFlag encodes the boolean discriminant of an XDR optional; the
// caller encodes the body if present is true.
func (e *Encoder) OptionalFlag(present bool) { e.Bool(present) }

// Decoder deserializes values from an XDR stream. The first failure
// sticks: subsequent calls return zero values and Err reports the error.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder returns a decoder over data.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Buffer returns the decoder's entire backing buffer, for callers that
// manage its pooled lifetime. Every slice previously decoded (Opaque
// aliases) and the decoder itself are invalid once the buffer is
// recycled.
func (d *Decoder) Buffer() []byte { return d.data }

// Remaining returns the number of undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.data) - d.off }

// fail records the first error.
func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.data) {
		d.fail(ErrShort)
		return 0
	}
	b := d.data[d.off:]
	d.off += 4
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() int32 { return int32(d.Uint32()) }

// Uint64 decodes an unsigned hyper.
func (d *Decoder) Uint64() uint64 {
	hi := d.Uint32()
	lo := d.Uint32()
	return uint64(hi)<<32 | uint64(lo)
}

// Int64 decodes a hyper.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Bool decodes an XDR boolean, failing on values other than 0 and 1.
func (d *Decoder) Bool() bool {
	v := d.Uint32()
	if d.err != nil {
		return false
	}
	switch v {
	case 0:
		return false
	case 1:
		return true
	}
	d.fail(fmt.Errorf("xdr: bad bool value %d", v))
	return false
}

// Opaque decodes variable-length opaque data, enforcing maxLen (use a
// negative maxLen for "no limit"). The returned slice aliases the input.
func (d *Decoder) Opaque(maxLen int) []byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if maxLen >= 0 && n > uint32(maxLen) {
		d.fail(fmt.Errorf("%w: %d > %d", ErrTooLong, n, maxLen))
		return nil
	}
	if uint32(d.Remaining()) < n {
		d.fail(ErrShort)
		return nil
	}
	b := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	p := pad(int(n))
	if d.Remaining() < p {
		d.fail(ErrShort)
		return nil
	}
	d.off += p
	return b
}

// OpaqueFixed decodes n bytes of fixed-length opaque data.
func (d *Decoder) OpaqueFixed(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n+pad(n) {
		d.fail(ErrShort)
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n + pad(n)
	return b
}

// String decodes an XDR string with the given maximum length.
func (d *Decoder) String(maxLen int) string {
	return string(d.Opaque(maxLen))
}

// OptionalFlag decodes the discriminant of an XDR optional.
func (d *Decoder) OptionalFlag() bool { return d.Bool() }

// Count decodes an array length, bounding it to max to prevent
// attacker-controlled allocations.
func (d *Decoder) Count(max int) int {
	n := d.Uint32()
	if d.err != nil {
		return 0
	}
	if n > uint32(max) || n > math.MaxInt32 {
		d.fail(fmt.Errorf("%w: array of %d (max %d)", ErrTooLong, n, max))
		return 0
	}
	return int(n)
}
