package xdr

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestGoldenVectors(t *testing.T) {
	// Hand-checked encodings per RFC 4506.
	e := NewEncoder()
	e.Uint32(0x01020304)
	want := []byte{1, 2, 3, 4}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("uint32 = %x, want %x", e.Bytes(), want)
	}

	e.Reset()
	e.Int32(-1)
	want = []byte{0xff, 0xff, 0xff, 0xff}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("int32(-1) = %x, want %x", e.Bytes(), want)
	}

	e.Reset()
	e.Uint64(0x0102030405060708)
	want = []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("uint64 = %x, want %x", e.Bytes(), want)
	}

	e.Reset()
	e.String("hi!")
	// length 3, then "hi!" padded with one zero.
	want = []byte{0, 0, 0, 3, 'h', 'i', '!', 0}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("string = %x, want %x", e.Bytes(), want)
	}

	e.Reset()
	e.Bool(true)
	e.Bool(false)
	want = []byte{0, 0, 0, 1, 0, 0, 0, 0}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("bools = %x, want %x", e.Bytes(), want)
	}

	e.Reset()
	e.OpaqueFixed([]byte{0xaa, 0xbb})
	want = []byte{0xaa, 0xbb, 0, 0}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("fixed opaque = %x, want %x", e.Bytes(), want)
	}
}

func TestPaddingAlwaysFourByteAligned(t *testing.T) {
	for n := 0; n < 9; n++ {
		e := NewEncoder()
		e.Opaque(make([]byte, n))
		if e.Len()%4 != 0 {
			t.Errorf("opaque(%d) length %d not aligned", n, e.Len())
		}
		e.Reset()
		e.OpaqueFixed(make([]byte, n))
		if e.Len()%4 != 0 {
			t.Errorf("fixed(%d) length %d not aligned", n, e.Len())
		}
	}
}

func TestDecoderRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uint32(42)
	e.Int32(-7)
	e.Uint64(math.MaxUint64)
	e.Int64(math.MinInt64)
	e.Bool(true)
	e.String("hello, world")
	e.Opaque([]byte{1, 2, 3, 4, 5})
	e.OpaqueFixed([]byte{9, 8, 7})

	d := NewDecoder(e.Bytes())
	if got := d.Uint32(); got != 42 {
		t.Errorf("uint32 = %d", got)
	}
	if got := d.Int32(); got != -7 {
		t.Errorf("int32 = %d", got)
	}
	if got := d.Uint64(); got != math.MaxUint64 {
		t.Errorf("uint64 = %d", got)
	}
	if got := d.Int64(); got != math.MinInt64 {
		t.Errorf("int64 = %d", got)
	}
	if got := d.Bool(); !got {
		t.Error("bool = false")
	}
	if got := d.String(100); got != "hello, world" {
		t.Errorf("string = %q", got)
	}
	if got := d.Opaque(100); !bytes.Equal(got, []byte{1, 2, 3, 4, 5}) {
		t.Errorf("opaque = %v", got)
	}
	if got := d.OpaqueFixed(3); !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Errorf("fixed = %v", got)
	}
	if d.Err() != nil {
		t.Errorf("err = %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining = %d", d.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	_ = d.Uint32() // short
	if !errors.Is(d.Err(), ErrShort) {
		t.Fatalf("err = %v, want ErrShort", d.Err())
	}
	// Subsequent reads return zero values without panicking.
	if v := d.Uint64(); v != 0 {
		t.Errorf("after error, uint64 = %d", v)
	}
	if s := d.String(10); s != "" {
		t.Errorf("after error, string = %q", s)
	}
	if b := d.Opaque(10); b != nil {
		t.Errorf("after error, opaque = %v", b)
	}
}

func TestDecoderBadBool(t *testing.T) {
	d := NewDecoder([]byte{0, 0, 0, 2})
	_ = d.Bool()
	if d.Err() == nil {
		t.Error("bool=2 accepted")
	}
}

func TestDecoderMaxLenEnforced(t *testing.T) {
	e := NewEncoder()
	e.String("toolongforthis")
	d := NewDecoder(e.Bytes())
	_ = d.String(4)
	if !errors.Is(d.Err(), ErrTooLong) {
		t.Errorf("err = %v, want ErrTooLong", d.Err())
	}
}

func TestDecoderTruncatedOpaque(t *testing.T) {
	// Claims 100 bytes, supplies 4.
	d := NewDecoder([]byte{0, 0, 0, 100, 1, 2, 3, 4})
	_ = d.Opaque(-1)
	if !errors.Is(d.Err(), ErrShort) {
		t.Errorf("err = %v, want ErrShort", d.Err())
	}
}

func TestDecoderTruncatedPadding(t *testing.T) {
	// length 3 but only 3 data bytes and no padding byte.
	d := NewDecoder([]byte{0, 0, 0, 3, 'a', 'b', 'c'})
	_ = d.Opaque(-1)
	if !errors.Is(d.Err(), ErrShort) {
		t.Errorf("err = %v, want ErrShort", d.Err())
	}
}

func TestCountBounds(t *testing.T) {
	e := NewEncoder()
	e.Uint32(5)
	d := NewDecoder(e.Bytes())
	if n := d.Count(10); n != 5 || d.Err() != nil {
		t.Errorf("count = %d err %v", n, d.Err())
	}
	d = NewDecoder(e.Bytes())
	_ = d.Count(4)
	if !errors.Is(d.Err(), ErrTooLong) {
		t.Errorf("err = %v, want ErrTooLong", d.Err())
	}
}

func TestQuickRoundTripPrimitives(t *testing.T) {
	f := func(a uint32, b int32, c uint64, d64 int64, s string, blob []byte) bool {
		e := NewEncoder()
		e.Uint32(a)
		e.Int32(b)
		e.Uint64(c)
		e.Int64(d64)
		e.String(s)
		e.Opaque(blob)
		d := NewDecoder(e.Bytes())
		okA := d.Uint32() == a
		okB := d.Int32() == b
		okC := d.Uint64() == c
		okD := d.Int64() == d64
		okS := d.String(-1) == s
		got := d.Opaque(-1)
		okBlob := bytes.Equal(got, blob) || (len(blob) == 0 && len(got) == 0)
		return okA && okB && okC && okD && okS && okBlob && d.Err() == nil && d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickDecoderNeverPanicsOnJunk(t *testing.T) {
	f := func(junk []byte) bool {
		d := NewDecoder(junk)
		_ = d.Uint32()
		_ = d.String(1 << 20)
		_ = d.Opaque(1 << 20)
		_ = d.Bool()
		_ = d.Uint64()
		_ = d.OpaqueFixed(8)
		return true // completing without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
