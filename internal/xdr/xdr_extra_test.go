package xdr

import (
	"bytes"
	"testing"
)

func TestOpaqueInto(t *testing.T) {
	e := NewEncoder()
	e.Uint32(7)
	w := e.OpaqueInto(5)
	copy(w, "hello")
	e.Uint32(9)

	d := NewDecoder(e.Bytes())
	if d.Uint32() != 7 {
		t.Fatal("lead word")
	}
	if got := d.Opaque(100); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("opaque = %q", got)
	}
	if d.Uint32() != 9 || d.Err() != nil {
		t.Fatalf("trail word, err=%v", d.Err())
	}
}

// TestOpaqueIntoReusedBufferNotDirty ensures the reserved window starts
// zeroed even when the encoder reuses a dirty backing array.
func TestOpaqueIntoReusedBufferNotDirty(t *testing.T) {
	e := NewEncoder()
	e.OpaqueFixed(bytes.Repeat([]byte{0xFF}, 64))
	e.Reset()
	w := e.OpaqueInto(5) // 3 pad bytes follow the window
	copy(w, "abcde")
	d := NewDecoder(e.Bytes())
	got := d.Opaque(100)
	if d.Err() != nil || !bytes.Equal(got, []byte("abcde")) {
		t.Fatalf("opaque = %q, err=%v", got, d.Err())
	}
	// The padding bytes must be zero, not stale 0xFF.
	raw := e.Bytes()
	for _, b := range raw[4+5:] {
		if b != 0 {
			t.Fatalf("dirty padding: % x", raw)
		}
	}
}

func TestReservePatchTruncate(t *testing.T) {
	e := NewEncoderWith(make([]byte, 0, 16))
	off := e.Reserve(4)
	e.Uint32(42)
	body := e.Len()
	e.Uint32(99) // rolled back
	e.Truncate(body)
	e.PatchUint32(off, uint32(e.Len()-4))

	d := NewDecoder(e.Bytes())
	if n := d.Uint32(); n != 4 {
		t.Fatalf("patched length = %d", n)
	}
	if v := d.Uint32(); v != 42 {
		t.Fatalf("body = %d", v)
	}
	if d.Remaining() != 0 {
		t.Fatalf("truncate left %d bytes", d.Remaining())
	}
}

func TestPaddingStillZero(t *testing.T) {
	e := NewEncoder()
	e.Opaque([]byte{1})
	e.OpaqueFixed([]byte{2, 3})
	want := []byte{0, 0, 0, 1, 1, 0, 0, 0, 2, 3, 0, 0}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("got % x want % x", e.Bytes(), want)
	}
}

func BenchmarkEncodeOpaque(b *testing.B) {
	data := make([]byte, 8190) // forces 2 pad bytes
	e := NewEncoder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.Opaque(data)
	}
}
