package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"discfs/internal/keynote"
	"discfs/internal/nfs"
	"discfs/internal/secchan"
	"discfs/internal/sunrpc"
	"discfs/internal/vfs"
)

// redialsTotal counts transparent re-establishments of lost client
// connections — main shard links and data-pool slots — process-wide.
// Bridged into the metrics registries as discfs_redials_total.
var redialsTotal atomic.Uint64

// RedialsTotal reports how many lost connections clients in this
// process have transparently re-established.
func RedialsTotal() uint64 { return redialsTotal.Load() }

// Redial backoff bounds: the first re-attempt is immediate (a lost
// connection usually means one failed server restarting), then failed
// attempts back off exponentially up to the cap.
const (
	redialBase = 50 * time.Millisecond
	redialCap  = 5 * time.Second
)

// backoff tracks capped exponential backoff for one connection slot.
// Guarded by the slot's mutex.
type backoff struct {
	fails int
	next  time.Time
}

func (b *backoff) due(now time.Time) bool { return !now.Before(b.next) }

func (b *backoff) fail(now time.Time) {
	d := redialBase << b.fails
	if d > redialCap || d <= 0 {
		d = redialCap
	} else {
		b.fails++
	}
	b.next = now.Add(d)
}

func (b *backoff) reset() { *b = backoff{} }

// shard is the client's connection state for one federated server: the
// main secure channel with its RPC/NFS clients and attribute cache,
// the negotiated transfer size, and the lazily dialed data-connection
// pool. A single-server client is one shard.
type shard struct {
	c    *Client
	id   int
	addr string

	// mu serializes main-link redials; link is lock-free on the read
	// path so every operation pays one atomic load, not a mutex.
	mu     sync.Mutex
	redial backoff
	link   atomic.Pointer[shardLink]

	// xfer is this shard's negotiated per-RPC transfer size: the
	// payload of one READ/WRITE and the granule of its data caches.
	// Shards negotiate independently — a v2-era shard serves 8 KiB
	// while its peers serve 504 KiB.
	xfer   uint32
	server keynote.Principal

	poolClosed atomic.Bool
	pool       []ioConn
}

// shardLink is one generation of a shard's main connection. Replaced
// wholesale on redial so in-flight users of the old generation fail
// with the dead connection's sticky error rather than observing a
// half-swapped link.
type shardLink struct {
	conn  *secchan.Conn
	rpc   *sunrpc.Client
	nfs   *nfs.Client
	attrs *nfs.CachingClient
	root  vfs.Handle // mount root, shard-tagged
}

// dialShard brings up the initial connection to one server.
func dialShard(ctx context.Context, c *Client, id int, addr string) (*shard, error) {
	sh := &shard{c: c, id: id, addr: addr, pool: make([]ioConn, ioPoolSize)}
	ln, xfer, err := sh.connect(ctx, c.dataCache.maxTransfer)
	if err != nil {
		return nil, err
	}
	sh.xfer = xfer
	sh.server = ln.conn.Peer()
	sh.link.Store(ln)
	return sh, nil
}

// connect dials the shard's server and brings up a complete link:
// secure channel, RPC and NFS clients (stamped with the shard id for
// handle tagging), mount, transfer-size negotiation, attribute cache.
func (sh *shard) connect(ctx context.Context, propose uint32) (*shardLink, uint32, error) {
	conn, err := secchan.DialContext(ctx, sh.addr, secchan.Config{Identity: sh.c.identity})
	if err != nil {
		if errors.Is(err, secchan.ErrKeyRevoked) {
			return nil, 0, fmt.Errorf("%w: %w", ErrRevoked, err)
		}
		return nil, 0, err
	}
	rpc := sunrpc.NewClient(conn)
	sh.c.observeRPC(sh.id, rpc)
	nc := nfs.NewClient(rpc)
	nc.SetShard(sh.id)
	root, err := nc.Mount(ctx, "/discfs")
	if err != nil {
		rpc.Close()
		return nil, 0, fmt.Errorf("core: mount %s: %w", sh.addr, err)
	}
	// Negotiate the connection's transfer size (FSINFO-style): the
	// client proposes, the server clamps. Servers predating the
	// extension grant the v2 baseline; only a transport failure is an
	// error.
	xfer, err := nc.Negotiate(ctx, propose)
	if err != nil {
		rpc.Close()
		return nil, 0, fmt.Errorf("core: negotiate transfer size: %w", err)
	}
	return &shardLink{
		conn:  conn,
		rpc:   rpc,
		nfs:   nc,
		attrs: nfs.NewCachingClient(nc, sh.c.dataCache.attrTTL),
		root:  root,
	}, xfer, nil
}

// live returns the shard's current link, transparently redialing one
// whose connection has died. While an attempt is backing off (or
// fails), the dead link is returned and calls on it fail fast with the
// sticky transport error — the next caller after the backoff window
// retries. Server sessions are keyed by principal, not connection, so
// a redial needs no credential replay.
func (sh *shard) live(ctx context.Context) *shardLink {
	ln := sh.link.Load()
	if !ln.rpc.Broken() {
		return ln
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ln = sh.link.Load()
	if !ln.rpc.Broken() || sh.c.closed.Load() {
		return ln
	}
	if !sh.redial.due(time.Now()) {
		return ln
	}
	nl, _, err := sh.connect(ctx, sh.xfer)
	if err != nil {
		sh.redial.fail(time.Now())
		if errors.Is(err, ErrRevoked) {
			// The server refused the handshake because this identity is
			// revoked: the link can never come back, so poison it — every
			// call on the shard now surfaces the revocation instead of
			// the stale transport error of the cut connection.
			ln.rpc.Fail(err)
		}
		return ln
	}
	// Keep the original grant: the server-side bound is global, and the
	// data caches already run at the old granule.
	nl.nfs.SetMaxData(sh.xfer)
	sh.redial.reset()
	redialsTotal.Add(1)
	ln.rpc.Close()
	sh.link.Store(nl)
	return nl
}

func (sh *shard) nfsc(ctx context.Context) *nfs.Client         { return sh.live(ctx).nfs }
func (sh *shard) attrc(ctx context.Context) *nfs.CachingClient { return sh.live(ctx).attrs }
func (sh *shard) root(ctx context.Context) vfs.Handle          { return sh.live(ctx).root }

// ioPoolSize is the number of extra data-path connections a shard may
// open (in addition to its main connection).
const ioPoolSize = 8

// ioConn is one lazily dialed data-path connection slot. The per-slot
// mutex keeps a slow dial from serializing the rest of the pool.
type ioConn struct {
	mu     sync.Mutex
	redial backoff
	// lost marks that a previously working connection died, so the
	// next successful dial counts as a redial rather than first use.
	lost bool
	rpc  *sunrpc.Client
	nfs  *nfs.Client
}

// dataConn returns an NFS client for bulk data transfer number i,
// dialing the pool slot on first use. A slot whose connection died
// mid-session is redialed under capped exponential backoff; while the
// slot is down (and on any dial failure) the main connection serves.
func (sh *shard) dataConn(ctx context.Context, i int64) *nfs.Client {
	if len(sh.pool) == 0 || sh.poolClosed.Load() {
		return sh.nfsc(ctx)
	}
	s := &sh.pool[int(i)%len(sh.pool)]
	s.mu.Lock()
	if s.nfs != nil && s.rpc.Broken() {
		// The connection dropped mid-session: retire it and fall
		// through to the redial path (first re-attempt immediate).
		s.rpc.Close()
		s.rpc, s.nfs = nil, nil
		s.lost = true
	}
	if s.nfs == nil && s.redial.due(time.Now()) {
		conn, err := secchan.DialContext(ctx, sh.addr, secchan.Config{Identity: sh.c.identity})
		switch {
		case err == nil && sh.poolClosed.Load():
			// A Close that raced this dial wins: abandon the connection
			// rather than leak it past closePool.
			conn.Close()
		case err == nil:
			s.rpc = sunrpc.NewClient(conn)
			sh.c.observeRPC(sh.id, s.rpc)
			s.nfs = nfs.NewClient(s.rpc)
			s.nfs.SetShard(sh.id)
			// Same server, same grant: adopt the negotiated size without
			// a second FSINFO round trip (the server-side bound is
			// global, not per-connection).
			s.nfs.SetMaxData(sh.xfer)
			if s.lost {
				s.lost = false
				redialsTotal.Add(1)
			}
			s.redial.reset()
		case ctx.Err() != nil:
			// The triggering operation's context expired mid-dial; that
			// says nothing about the server, so let a later caller retry
			// without a backoff penalty.
		default:
			s.redial.fail(time.Now())
		}
	}
	nc := s.nfs
	s.mu.Unlock()
	if nc == nil {
		return sh.nfsc(ctx)
	}
	return nc
}

// closePool tears down the data-path connections and stops new dials.
func (sh *shard) closePool() {
	sh.poolClosed.Store(true)
	for i := range sh.pool {
		s := &sh.pool[i]
		s.mu.Lock()
		if s.rpc != nil {
			s.rpc.Close()
			s.rpc, s.nfs = nil, nil
		}
		s.mu.Unlock()
	}
}

// observeRPC wires per-shard request-count and latency metrics into
// one RPC connection.
func (c *Client) observeRPC(id int, rpc *sunrpc.Client) {
	if c.shardReqs == nil {
		return
	}
	label := strconv.Itoa(id)
	cnt := c.shardReqs.With(label)
	hist := c.shardLat.With(label)
	rpc.SetObserver(func(d time.Duration, err error) {
		cnt.Inc()
		hist.Observe(d.Seconds())
	})
}
