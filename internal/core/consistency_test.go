package core

// Close-to-open consistency tests for the client-side data cache: a
// reader that opens after a writer's close sees the writer's data, even
// when the reader holds stale cached blocks from an earlier open; and
// Close/Sync are the error barrier for deferred write-behind errors.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"discfs/internal/ffs"
	"discfs/internal/vfs"
)

// writeAndClose writes data to path through a cached File and closes it
// (the close-to-open "close" edge).
func writeAndClose(t *testing.T, c *Client, path string, data []byte) {
	t.Helper()
	ctx := context.Background()
	f, err := c.Open(ctx, path, os.O_CREATE|os.O_WRONLY)
	if err != nil {
		t.Fatalf("open for write: %v", err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// readAll opens path and reads it whole through the cache (readahead
// enabled), closing the File.
func readAll(t *testing.T, c *Client, path string) []byte {
	t.Helper()
	ctx := context.Background()
	f, err := c.Open(ctx, path, os.O_RDONLY)
	if err != nil {
		t.Fatalf("open for read: %v", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return data
}

// TestCloseToOpenAcrossClients is the paper's multi-device scenario:
// client A writes and closes; client B opens (readahead enabled) and
// must see A's data — including after B already cached an older version
// of the file, the case the open-time mtime/size revalidation exists
// for.
func TestCloseToOpenAcrossClients(t *testing.T) {
	_, addr := testServer(t, ServerConfig{})
	a := dialAs(t, addr, "test-admin")
	b := dialAs(t, addr, "test-admin")

	// v1 spans several blocks so readahead engages.
	v1 := bytes.Repeat([]byte("version-one."), 4096) // 48 KiB
	writeAndClose(t, a, "/c2o.txt", v1)

	// B reads v1 — and now holds cached blocks for the whole file.
	if got := readAll(t, b, "/c2o.txt"); !bytes.Equal(got, v1) {
		t.Fatalf("B's first read: got %d bytes, want v1 (%d)", len(got), len(v1))
	}

	// A rewrites the file (same length, different bytes — only mtime
	// distinguishes it) and closes. FFS mtimes have coarse granularity;
	// ensure the clock ticks past it.
	time.Sleep(10 * time.Millisecond)
	v2 := bytes.Repeat([]byte("VERSION-TWO!"), 4096)
	f, err := a.Open(context.Background(), "/c2o.txt", os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(v2); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// B re-opens: revalidation must invalidate its stale blocks.
	if got := readAll(t, b, "/c2o.txt"); !bytes.Equal(got, v2) {
		t.Fatalf("B's re-open read stale data: got %q...", got[:24])
	}

	// A shorter rewrite must also be seen (size validator).
	v3 := []byte("v3-short")
	writeAndCloseTrunc(t, a, "/c2o.txt", v3)
	if got := readAll(t, b, "/c2o.txt"); !bytes.Equal(got, v3) {
		t.Fatalf("B's read after truncating rewrite = %q, want %q", got, v3)
	}
}

func writeAndCloseTrunc(t *testing.T, c *Client, path string, data []byte) {
	t.Helper()
	ctx := context.Background()
	f, err := c.Open(ctx, path, os.O_WRONLY|os.O_TRUNC)
	if err != nil {
		t.Fatalf("open trunc: %v", err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestCloseReturnsDeferredWriteError is the error-barrier regression
// test: a buffered write whose background flush fails must surface that
// failure from Close, not lose it.
func TestCloseReturnsDeferredWriteError(t *testing.T) {
	_, addr := testServer(t, ServerConfig{})
	c := dialAs(t, addr, "test-admin")

	ctx, cancel := context.WithCancel(context.Background())
	f, err := c.Open(ctx, "/deferred.txt", os.O_CREATE|os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	// A small write sits in the coalescing hold as a partial dirty
	// block; canceling the File's context then fails its flush.
	if _, err := f.Write([]byte("doomed bytes")); err != nil {
		t.Fatalf("buffered write reported error: %v", err)
	}
	cancel()
	err = f.Close()
	if err == nil {
		t.Fatal("Close returned nil after its deferred flush was canceled")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Close error = %v, want context.Canceled in chain", err)
	}
	// The barrier consumed the error: a second barrier-less operation
	// on a fresh File reports clean state.
	f2, err := c.Open(context.Background(), "/clean.txt", os.O_CREATE|os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write([]byte("fine")); err != nil {
		t.Fatal(err)
	}
	if err := f2.Close(); err != nil {
		t.Fatalf("clean file Close = %v", err)
	}
}

// TestSyncClearsDeferredError verifies Sync is a consuming barrier: the
// first Sync after a failed flush reports it, the next reports clean.
func TestSyncClearsDeferredError(t *testing.T) {
	_, addr := testServer(t, ServerConfig{})
	c := dialAs(t, addr, "test-admin")
	ctx, cancel := context.WithCancel(context.Background())
	f, err := c.Open(ctx, "/barrier.txt", os.O_CREATE|os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("unflushable")); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := f.Sync(); err == nil {
		t.Fatal("Sync after canceled flush returned nil")
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second Sync = %v, want nil (barrier consumed)", err)
	}
	// Close still fails the closed-context flush? No dirty data remains,
	// so Close is clean.
	if err := f.Close(); err != nil {
		t.Fatalf("Close after consumed barrier = %v", err)
	}
}

// flakySyncFS wraps a backing store whose Sync fails a set number of
// times — a device whose volatile-cache flush transiently errors.
type flakySyncFS struct {
	vfs.FS
	mu    sync.Mutex
	fails int
	syncs int
}

func (f *flakySyncFS) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.fails > 0 {
		f.fails--
		return errors.New("injected device sync failure")
	}
	return vfs.SyncFS(f.FS)
}

func (f *flakySyncFS) syncCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// TestUncachedSyncRetriesCommitAfterFailure: on the uncached path a
// failed COMMIT must leave the File re-armed, so a retried Sync issues
// the barrier again instead of reporting durability it never got.
func TestUncachedSyncRetriesCommitAfterFailure(t *testing.T) {
	backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakySyncFS{FS: backing, fails: 1}
	_, addr := testServer(t, ServerConfig{Backing: flaky, WriteBehind: true})
	c := dialAsWith(t, addr, "test-admin", WithNoDataCache())

	f, err := c.Open(context.Background(), "/durable.txt", os.O_CREATE|os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("must-survive")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err == nil {
		t.Fatal("Sync over failing device sync returned nil")
	}
	before := flaky.syncCount()
	if err := f.Sync(); err != nil {
		t.Fatalf("retried Sync = %v, want nil", err)
	}
	if after := flaky.syncCount(); after <= before {
		t.Fatalf("retried Sync issued no COMMIT barrier (device syncs %d -> %d)", before, after)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	a, err := backing.Lookup(backing.Root(), "durable.txt")
	if err != nil {
		t.Fatalf("backing lookup: %v", err)
	}
	got, _, err := backing.Read(a.Handle, 0, 64)
	if err != nil || string(got) != "must-survive" {
		t.Fatalf("backing content = %q, %v; want must-survive", got, err)
	}
}
