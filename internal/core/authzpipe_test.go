package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"discfs/internal/ffs"
	"discfs/internal/keynote"
	"discfs/internal/vfs"
)

// Tests for the server's authorization pipeline itself — decision cache
// clamping, revocation vs. caching races, and the handle→path cache —
// exercised directly against the Server with no RPC in the way.

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Set(t time.Time) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

func pipeServer(t *testing.T, cfg ServerConfig) (*Server, vfs.Handle) {
	t.Helper()
	backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 4096})
	if err != nil {
		t.Fatalf("ffs.New: %v", err)
	}
	cfg.Backing = backing
	if cfg.ServerKey == nil {
		cfg.ServerKey = keynote.DeterministicKey("pipe-admin")
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, backing.Root()
}

// TestTimeDependentCacheClamp: with an hour-gated policy, a decision
// cached at 12:59 must not be served at 13:00, no matter how generous
// the TTL window is.
func TestTimeDependentCacheClamp(t *testing.T) {
	clk := &fakeClock{t: time.Date(2001, 6, 15, 12, 59, 30, 0, time.UTC)}
	bob := keynote.DeterministicKey("clamp-bob").Principal
	srv, root := pipeServer(t, ServerConfig{
		CacheTTL: 10 * time.Minute,
		Now:      clk.Now,
		PolicyText: "Authorizer: \"POLICY\"\nLicensees: \"" + string(bob) +
			"\"\nConditions: app_domain == \"DisCFS\" && hour == \"12\" -> \"RWX\";\n",
	})
	if err := srv.Check(bob, root, PermR, "read"); err != nil {
		t.Fatalf("in-hours check: %v", err)
	}
	if q := srv.Stats().Queries; q != 1 {
		t.Fatalf("queries = %d, want 1", q)
	}

	// Still 12:59: the cached decision serves.
	clk.Set(time.Date(2001, 6, 15, 12, 59, 45, 0, time.UTC))
	if err := srv.Check(bob, root, PermR, "read"); err != nil {
		t.Fatalf("in-hours cached check: %v", err)
	}
	st := srv.Stats()
	if st.Queries != 1 || st.CacheHits == 0 {
		t.Fatalf("queries/hits = %d/%d, want 1/≥1 (second check should hit)", st.Queries, st.CacheHits)
	}

	// 13:00:01 — within the 10-minute TTL, but across the minute (and
	// hour) boundary: the clamp forces re-evaluation, which denies.
	clk.Set(time.Date(2001, 6, 15, 13, 0, 1, 0, time.UTC))
	if err := srv.Check(bob, root, PermR, "read"); err != vfs.ErrPerm {
		t.Fatalf("out-of-hours check = %v, want ErrPerm (stale grant served across the boundary)", err)
	}
	if q := srv.Stats().Queries; q != 2 {
		t.Errorf("queries = %d, want 2 (boundary crossing must re-evaluate)", q)
	}
}

// TestNonVolatileSessionKeepsTTL: without time-dependent assertions the
// clamp must not fire — decisions stay cached across minute boundaries
// for the full TTL.
func TestNonVolatileSessionKeepsTTL(t *testing.T) {
	clk := &fakeClock{t: time.Date(2001, 6, 15, 12, 59, 30, 0, time.UTC)}
	bob := keynote.DeterministicKey("ttl-bob").Principal
	srv, root := pipeServer(t, ServerConfig{
		CacheTTL: 10 * time.Minute,
		Now:      clk.Now,
		PolicyText: "Authorizer: \"POLICY\"\nLicensees: \"" + string(bob) +
			"\"\nConditions: app_domain == \"DisCFS\" -> \"RWX\";\n",
	})
	if err := srv.Check(bob, root, PermR, "read"); err != nil {
		t.Fatalf("check: %v", err)
	}
	clk.Set(time.Date(2001, 6, 15, 13, 3, 0, 0, time.UTC)) // minutes later, within TTL
	if err := srv.Check(bob, root, PermR, "read"); err != nil {
		t.Fatalf("later check: %v", err)
	}
	if q := srv.Stats().Queries; q != 1 {
		t.Errorf("queries = %d, want 1 (non-volatile session must keep the cached decision)", q)
	}
}

// TestRevocationNeverServedFromCache hammers the check path while keys
// are revoked mid-flight: the moment RevokeKey returns, no check for
// that principal may succeed — a stale cache entry stamped with a
// pre-revocation validity must never satisfy a post-revocation lookup.
// Run with -race.
func TestRevocationNeverServedFromCache(t *testing.T) {
	srv, root := pipeServer(t, ServerConfig{})
	for round := 0; round < 20; round++ {
		peer := keynote.DeterministicKey(fmt.Sprintf("revoke-race-%d", round)).Principal
		if _, err := srv.IssueCredential(peer, root.Ino, "RWX", "race round"); err != nil {
			t.Fatalf("issue: %v", err)
		}
		if err := srv.Check(peer, root, PermR, "read"); err != nil {
			t.Fatalf("pre-revocation check: %v", err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var postRevokeAllows atomic.Uint64
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						srv.Check(peer, root, PermR, "read")
					}
				}
			}()
		}
		srv.Session().RevokeKey(peer)
		// From here on, every check must deny.
		for i := 0; i < 50; i++ {
			if err := srv.Check(peer, root, PermR, "read"); err == nil {
				postRevokeAllows.Add(1)
			}
		}
		close(stop)
		wg.Wait()
		if n := postRevokeAllows.Load(); n != 0 {
			t.Fatalf("round %d: %d checks allowed after RevokeKey returned", round, n)
		}
	}
}

// TestPathCacheInvalidation: pathOf caches rendered ancestry and a
// remap (rename) or drop (remove) invalidates it.
func TestPathCacheInvalidation(t *testing.T) {
	srv, root := pipeServer(t, ServerConfig{})
	dirA := vfs.Handle{Ino: 100}
	dirB := vfs.Handle{Ino: 200}
	file := vfs.Handle{Ino: 300}
	srv.noteParent(dirA, root)
	srv.noteParent(dirB, root)
	srv.noteParent(file, dirA)

	p1 := srv.pathOf(file)
	if !strings.Contains(p1, "/100/300/") {
		t.Fatalf("path = %q, want …/100/300/", p1)
	}
	misses0 := srv.Stats().PathCacheMisses
	if p2 := srv.pathOf(file); p2 != p1 {
		t.Fatalf("repeat path = %q, want %q", p2, p1)
	}
	st := srv.Stats()
	if st.PathCacheHits == 0 || st.PathCacheMisses != misses0 {
		t.Fatalf("hits/misses = %d/%d: repeat resolution did not hit the cache", st.PathCacheHits, st.PathCacheMisses)
	}

	// Rename: the file moves from a to b. The cached path must not be
	// served afterward.
	srv.noteParent(file, dirB)
	if p3 := srv.pathOf(file); !strings.Contains(p3, "/200/300/") || strings.Contains(p3, "100") {
		t.Fatalf("post-rename path = %q, want …/200/300/", p3)
	}

	// Remove: ancestry is forgotten; only the file's own inode remains.
	srv.dropParent(file)
	if p4 := srv.pathOf(file); p4 != "/300/" {
		t.Fatalf("post-remove path = %q, want /300/", p4)
	}
}

// TestRenameRevokesSubtreeGrant is the end-to-end consequence: a
// credential scoped to directory a's subtree must stop authorizing a
// file once the file is renamed out of a — even though the decision was
// cached — because the path epoch participates in cache validity.
func TestRenameRevokesSubtreeGrant(t *testing.T) {
	srv, root := pipeServer(t, ServerConfig{})
	admin := srv.Principal()
	adminView := &view{s: srv, peer: admin}
	a, err := adminView.Mkdir(root, "a", 0o755)
	if err != nil {
		t.Fatalf("mkdir a: %v", err)
	}
	b, err := adminView.Mkdir(root, "b", 0o755)
	if err != nil {
		t.Fatalf("mkdir b: %v", err)
	}
	f, err := adminView.Create(a.Handle, "f", 0o644)
	if err != nil {
		t.Fatalf("create a/f: %v", err)
	}

	bob := keynote.DeterministicKey("subtree-bob").Principal
	if _, err := srv.IssueCredential(bob, a.Handle.Ino, "R", "a subtree"); err != nil {
		t.Fatalf("issue: %v", err)
	}
	if err := srv.Check(bob, f.Handle, PermR, "read"); err != nil {
		t.Fatalf("read under a/: %v", err)
	}
	// Decision for (bob, f) is now cached. Move f out of the granted
	// subtree.
	if err := adminView.Rename(a.Handle, "f", b.Handle, "f"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if err := srv.Check(bob, f.Handle, PermR, "read"); err != vfs.ErrPerm {
		t.Fatalf("read after rename = %v, want ErrPerm (cached subtree grant survived the move)", err)
	}
}

// TestStatsGauges: the extended Stats fields move.
func TestStatsGauges(t *testing.T) {
	srv, root := pipeServer(t, ServerConfig{})
	bob := keynote.DeterministicKey("gauge-bob").Principal
	if _, err := srv.IssueCredential(bob, root.Ino, "RWX", "gauges"); err != nil {
		t.Fatal(err)
	}
	srv.Check(bob, root, PermR, "read")
	srv.Check(bob, root, PermR, "read")
	st := srv.Stats()
	if st.Generation == 0 {
		t.Error("Generation = 0 after credential issuance")
	}
	if st.Decisions != 2 || st.CacheHits == 0 {
		t.Errorf("decisions/hits = %d/%d", st.Decisions, st.CacheHits)
	}
	if st.AuditDropped != 0 {
		t.Errorf("AuditDropped = %d", st.AuditDropped)
	}
}
