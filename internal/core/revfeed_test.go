package core

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"discfs/internal/ffs"
	"discfs/internal/keynote"
)

// revProxy is a TCP relay with a stable listen address across
// partition/heal cycles, so a "server" can be cut from the network and
// rejoin at the same place — the failure the revocation feed's
// anti-entropy exists for.
type revProxy struct {
	t      *testing.T
	target string
	addr   string

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]bool
	down  bool
}

func newRevProxy(t *testing.T, target string) *revProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("revProxy listen: %v", err)
	}
	p := &revProxy{t: t, target: target, addr: ln.Addr().String(), ln: ln, conns: make(map[net.Conn]bool)}
	go p.accept(ln)
	t.Cleanup(p.partition)
	return p
}

func (p *revProxy) accept(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.down {
			p.mu.Unlock()
			c.Close()
			continue
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			p.mu.Unlock()
			c.Close()
			continue
		}
		p.conns[c] = true
		p.conns[up] = true
		p.mu.Unlock()
		pipe := func(dst, src net.Conn) {
			io.Copy(dst, src)
			dst.Close()
			src.Close()
		}
		go pipe(up, c)
		go pipe(c, up)
	}
}

// partition closes the listener and every relayed connection. Idempotent.
func (p *revProxy) partition() {
	p.mu.Lock()
	p.down = true
	ln := p.ln
	p.ln = nil
	conns := p.conns
	p.conns = make(map[net.Conn]bool)
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for c := range conns {
		c.Close()
	}
}

// heal re-listens on the original address. The listener is bound before
// heal returns, so a dial issued afterwards is never refused.
func (p *revProxy) heal() {
	p.t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.down {
		return
	}
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		p.t.Fatalf("revProxy heal %s: %v", p.addr, err)
	}
	p.down = false
	p.ln = ln
	go p.accept(ln)
}

// revCluster is a full revocation-feed mesh of n servers in which every
// network path — client traffic and each directed peer link — runs
// through its own proxy, so partition(i) isolates server i completely:
// clients cannot reach it, it cannot push to or pull from anyone, and
// no one can push to it.
type revCluster struct {
	srvs   []*Server
	fronts []*revProxy   // client traffic to server i
	links  [][]*revProxy // links[i][j]: server i's feed connection to server j
}

func newRevCluster(t *testing.T, n int, syncWait time.Duration) *revCluster {
	t.Helper()
	admin := keynote.DeterministicKey("fed-admin")
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	cl := &revCluster{links: make([][]*revProxy, n)}
	for i := 0; i < n; i++ {
		cl.fronts = append(cl.fronts, newRevProxy(t, addrs[i]))
		cl.links[i] = make([]*revProxy, n)
		for j := 0; j < n; j++ {
			if j != i {
				cl.links[i][j] = newRevProxy(t, addrs[j])
			}
		}
	}
	for i := 0; i < n; i++ {
		backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 16384})
		if err != nil {
			t.Fatalf("ffs.New: %v", err)
		}
		if _, err := backing.Mkdir(backing.Root(), "data", 0o755); err != nil {
			t.Fatalf("mkdir /data on shard %d: %v", i, err)
		}
		var peers []string
		for j := 0; j < n; j++ {
			if j != i {
				peers = append(peers, cl.links[i][j].addr)
			}
		}
		srv, err := NewServer(ServerConfig{
			ServerKey:    admin,
			Backing:      backing,
			Peers:        peers,
			PeerSyncWait: syncWait,
		})
		if err != nil {
			t.Fatalf("NewServer %d: %v", i, err)
		}
		go srv.Serve(lns[i])
		t.Cleanup(func() { srv.Close() })
		cl.srvs = append(cl.srvs, srv)
	}
	return cl
}

func (cl *revCluster) frontAddrs() []string {
	out := make([]string, len(cl.fronts))
	for i, p := range cl.fronts {
		out[i] = p.addr
	}
	return out
}

func (cl *revCluster) partition(i int) {
	cl.fronts[i].partition()
	for j := range cl.srvs {
		if j == i {
			continue
		}
		cl.links[i][j].partition()
		cl.links[j][i].partition()
	}
}

func (cl *revCluster) heal(i int) {
	cl.fronts[i].heal()
	for j := range cl.srvs {
		if j == i {
			continue
		}
		cl.links[i][j].heal()
		cl.links[j][i].heal()
	}
}

// untilRevoked retries op until it reports ErrRevoked, failing the test
// if it has not within 10 seconds. Returns the terminal error.
func untilRevoked(t *testing.T, what string, op func() error) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := op()
		if errors.Is(err, ErrRevoked) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: still not fenced, last error: %v", what, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFedRevFeedPartitionConvergence is the tentpole scenario: three
// federated servers with a full feed mesh, one partitioned away during
// the admin's RevokeKey. The fan-out must name the unreachable shard in
// a typed partial-fence error, the reachable shards must fence the
// victim immediately, and — the part the feed exists for — the
// partitioned server must converge through anti-entropy after the
// partition heals and refuse the victim before serving a single
// operation.
func TestFedRevFeedPartitionConvergence(t *testing.T) {
	ctx := context.Background()
	cl := newRevCluster(t, 3, 5*time.Second)
	addrs := cl.frontAddrs()
	victim := keynote.DeterministicKey("victim")
	grantAll(t, cl.srvs, victim.Principal)

	// The victim works everywhere while the network is whole: a fan-out
	// client on the primary, and a direct session on each of the other
	// two servers (one will stay reachable, one will be partitioned).
	vc := dialAs(t, addrs[0], "victim")
	if _, _, err := vc.WriteFile(ctx, "/doc.txt", []byte("v1")); err != nil {
		t.Fatalf("victim write: %v", err)
	}
	vc1 := dialAs(t, addrs[1], "victim")
	if _, _, err := vc1.WriteFile(ctx, "/s1.txt", []byte("v1")); err != nil {
		t.Fatalf("victim write shard 1: %v", err)
	}
	admin := fedDial(t, addrs, "fed-admin")

	cl.partition(2)

	_, err := admin.RevokeKey(ctx, victim.Principal)
	if !errors.Is(err, ErrPartialFence) {
		t.Fatalf("RevokeKey with a partitioned shard = %v, want ErrPartialFence", err)
	}
	var pf *PartialFenceError
	if !errors.As(err, &pf) {
		t.Fatalf("RevokeKey error %T does not carry *PartialFenceError", err)
	}
	if len(pf.Unfenced) != 1 || pf.Unfenced[0] != addrs[2] {
		t.Fatalf("Unfenced = %v, want exactly the partitioned shard %s", pf.Unfenced, addrs[2])
	}
	if len(pf.Fenced) != 2 {
		t.Fatalf("Fenced = %v, want the two reachable shards", pf.Fenced)
	}

	// Reachable shards refuse immediately: live sessions are cut and the
	// transparent redial is refused at the handshake.
	untilRevoked(t, "victim on shard 0", func() error {
		_, err := vc.ReadFile(ctx, "/doc.txt")
		return err
	})
	untilRevoked(t, "victim on shard 1", func() error {
		_, err := vc1.ReadFile(ctx, "/s1.txt")
		return err
	})

	// The partitioned server still considers the victim valid — it never
	// heard the revocation.
	if cl.srvs[2].session.Revoked(victim.Principal) {
		t.Fatal("partitioned server learned the revocation through the partition")
	}

	cl.heal(2)

	// After the heal the rejoined server must refuse the victim BEFORE
	// serving any operation: the handshake gate syncs the feed first, so
	// a successful attach here is a fence failure, not a race.
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := Dial(ctx, addrs[2], victim)
		if err == nil {
			c.Close()
			t.Fatal("revoked victim attached to the rejoined shard")
		}
		if errors.Is(err, ErrRevoked) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoined shard never refused the victim: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !cl.srvs[2].session.Revoked(victim.Principal) {
		t.Fatal("rejoined server refused the victim without recording the revocation")
	}

	// With the mesh whole again the feed drains: no server owes any peer
	// entries.
	deadline = time.Now().Add(10 * time.Second)
	for {
		lag := uint64(0)
		for _, srv := range cl.srvs {
			l, _, _ := srv.RevocationFeed()
			lag += l
		}
		if lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("feed lag never drained: %d", lag)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFedRevFeedCutsLaggingLiveSession: a victim holds a live session
// on one server while the admin revokes its key on the *other* — the
// feed must carry the entry across and cut the live session, without
// any client-side fan-out touching the victim's server.
func TestFedRevFeedCutsLaggingLiveSession(t *testing.T) {
	ctx := context.Background()
	cl := newRevCluster(t, 2, 5*time.Second)
	addrs := cl.frontAddrs()
	victim := keynote.DeterministicKey("victim")
	grantAll(t, cl.srvs, victim.Principal)

	vc := dialAs(t, addrs[1], "victim")
	if _, _, err := vc.WriteFile(ctx, "/doc.txt", []byte("v1")); err != nil {
		t.Fatalf("victim write: %v", err)
	}

	// Single-server admin client: only server 0 hears the revocation
	// directly.
	admin := dialAs(t, addrs[0], "fed-admin")
	if _, err := admin.RevokeKey(ctx, victim.Principal); err != nil {
		t.Fatalf("RevokeKey: %v", err)
	}

	untilRevoked(t, "victim live session on the lagging server", func() error {
		_, err := vc.ReadFile(ctx, "/doc.txt")
		return err
	})
	if !cl.srvs[1].session.Revoked(victim.Principal) {
		t.Fatal("feed cut the session without recording the revocation")
	}
	if _, propagated, _ := cl.srvs[0].RevocationFeed(); propagated == 0 {
		t.Error("origin server reports no propagated entries")
	}
	if _, _, applied := cl.srvs[1].RevocationFeed(); applied == 0 {
		t.Error("receiving server reports no applied entries")
	}
}

// TestFedRevokePartialFenceNamesShard: without any feed peers, the
// client fan-out alone must visit every shard, aggregate what it could
// fence, and name what it could not — never abort on the first error.
func TestFedRevokePartialFenceNamesShard(t *testing.T) {
	ctx := context.Background()
	srvs, addrs := fedCluster(t, 3)
	victim := keynote.DeterministicKey("victim")
	grantAll(t, srvs, victim.Principal)
	admin := fedDial(t, addrs, "fed-admin")

	srvs[2].Close()

	_, err := admin.RevokeKey(ctx, victim.Principal)
	if !errors.Is(err, ErrPartialFence) {
		t.Fatalf("RevokeKey = %v, want ErrPartialFence", err)
	}
	var pf *PartialFenceError
	if !errors.As(err, &pf) {
		t.Fatalf("error %T does not carry *PartialFenceError", err)
	}
	if len(pf.Unfenced) != 1 || pf.Unfenced[0] != addrs[2] {
		t.Errorf("Unfenced = %v, want [%s]", pf.Unfenced, addrs[2])
	}
	if len(pf.Fenced) != 2 {
		t.Errorf("Fenced = %v, want both live shards", pf.Fenced)
	}
	if len(pf.Errs) != 1 {
		t.Errorf("Errs = %v, want one per unfenced shard", pf.Errs)
	}
	// Both live shards must have applied the revocation despite the dead
	// one: the fan-out never aborts early.
	for i := 0; i < 2; i++ {
		if !srvs[i].session.Revoked(victim.Principal) {
			t.Errorf("live shard %d did not apply the revocation", i)
		}
	}

	// Non-admins still get a plain ErrNotAdmin, not a partial fence.
	mallory := fedDial(t, addrs[:2], "mallory")
	if _, err := mallory.RevokeKey(ctx, victim.Principal); !errors.Is(err, ErrNotAdmin) {
		t.Errorf("mallory RevokeKey = %v, want ErrNotAdmin", err)
	}
	if _, err := mallory.RevokeCredential(ctx, "sig-ed25519-hex:nope"); !errors.Is(err, ErrNotAdmin) {
		t.Errorf("mallory RevokeCredential = %v, want ErrNotAdmin", err)
	}
}

// TestFedListCredentialsMergesShards: the admin's federation-wide audit
// view merges every shard's session, deduplicated by credential
// signature, while the per-shard listing preserves each server's local
// view.
func TestFedListCredentialsMergesShards(t *testing.T) {
	ctx := context.Background()
	srvs, addrs := fedCluster(t, 3)
	bob := keynote.DeterministicKey("bob").Principal

	// One distinct credential per shard session...
	grantAll(t, srvs, bob)
	// ...plus one credential present on every shard (the deduplication
	// case: submitted everywhere, listed once).
	shared, err := srvs[0].IssueCredential(keynote.DeterministicKey("carol").Principal,
		srvs[0].backing.Root().Ino, "R", "shared across shards")
	if err != nil {
		t.Fatalf("IssueCredential: %v", err)
	}
	for _, srv := range srvs[1:] {
		if _, err := srv.Session().AddCredentialText(shared.Source); err != nil {
			t.Fatalf("AddCredentialText: %v", err)
		}
	}

	admin := fedDial(t, addrs, "fed-admin")
	merged, err := admin.ListCredentials(ctx)
	if err != nil {
		t.Fatalf("ListCredentials: %v", err)
	}
	if len(merged) != 4 {
		t.Errorf("merged listing = %d credentials, want 4 (3 per-shard + 1 shared deduped)", len(merged))
	}
	for i := range srvs {
		per, err := admin.ListCredentialsOn(ctx, i)
		if err != nil {
			t.Fatalf("ListCredentialsOn(%d): %v", i, err)
		}
		if len(per) != 2 {
			t.Errorf("shard %d listing = %d credentials, want 2", i, len(per))
		}
	}
	if _, err := admin.ListCredentialsOn(ctx, 7); err == nil {
		t.Error("ListCredentialsOn(out of range) succeeded")
	}
}
