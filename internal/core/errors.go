package core

import (
	"errors"
	"fmt"

	"discfs/internal/nfs"
	"discfs/internal/secchan"
	"discfs/internal/sunrpc"
)

// The DisCFS error taxonomy. Every error surfaced by Client operations
// wraps one of these sentinels where applicable, so callers classify
// failures with errors.Is across the RPC boundary instead of matching
// NFS status codes or message text.
var (
	// ErrAccessDenied reports a policy denial: the caller's credentials
	// do not grant the permission the operation needs.
	ErrAccessDenied = errors.New("discfs: access denied")
	// ErrNoCredentials qualifies an access denial observed before this
	// client submitted any credentials on the connection — the paper's
	// freshly-attached mode-000 state. It always accompanies
	// ErrAccessDenied, never replaces it.
	ErrNoCredentials = errors.New("discfs: no credentials submitted")
	// ErrStale reports a file handle that no longer names a live file
	// (removed, or its generation rolled).
	ErrStale = errors.New("discfs: stale file handle")
	// ErrNotAdmin is returned by administrative procedures when the
	// caller's key is not an administrator of the server.
	ErrNotAdmin = errors.New("discfs: not an administrator")
	// ErrRevoked reports a connection attempt with a revoked key,
	// rejected during the secure-channel handshake.
	ErrRevoked = errors.New("discfs: key revoked")
	// ErrNotExist reports a missing file or directory.
	ErrNotExist = errors.New("discfs: file does not exist")
	// ErrCredentialRejected reports a submitted credential the server's
	// KeyNote session refused (bad signature, unparsable assertion).
	ErrCredentialRejected = errors.New("discfs: credential rejected")
	// ErrThrottled reports server backpressure: per-principal admission
	// control rejected the request (NFS-level TRYLATER) or the RPC
	// transport refused it while saturated or draining (ServerBusy).
	// The operation did not run; back off and retry.
	ErrThrottled = errors.New("discfs: request throttled by server")
	// ErrXDev reports an operation spanning two federation shards that
	// must stay on one server — the EXDEV contract at a mount boundary.
	// Rename across shards fails with it; callers fall back to
	// copy-and-delete.
	ErrXDev = errors.New("discfs: cross-shard operation")
)

// wireError translates an error observed through the RPC boundary into
// the taxonomy, preserving the original error in the chain so transport
// detail (e.g. the NFS status) stays reachable via errors.As.
func (c *Client) wireError(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, secchan.ErrKeyRevoked) {
		return fmt.Errorf("%w: %w", ErrRevoked, err)
	}
	if errors.Is(err, sunrpc.ErrServerBusy) {
		return fmt.Errorf("%w: %w", ErrThrottled, err)
	}
	switch nfs.StatOf(err) {
	case nfs.ErrAcces, nfs.ErrPerm:
		if !c.credsPresented.Load() {
			return fmt.Errorf("%w: %w: %w", ErrAccessDenied, ErrNoCredentials, err)
		}
		return fmt.Errorf("%w: %w", ErrAccessDenied, err)
	case nfs.ErrStale:
		return fmt.Errorf("%w: %w", ErrStale, err)
	case nfs.ErrNoEnt:
		return fmt.Errorf("%w: %w", ErrNotExist, err)
	case nfs.ErrTryLater:
		return fmt.Errorf("%w: %w", ErrThrottled, err)
	case nfs.ErrXDev:
		return fmt.Errorf("%w: %w", ErrXDev, err)
	}
	return err
}
