package core

import (
	"errors"
	"fmt"

	"discfs/internal/nfs"
	"discfs/internal/secchan"
	"discfs/internal/sunrpc"
)

// The DisCFS error taxonomy. Every error surfaced by Client operations
// wraps one of these sentinels where applicable, so callers classify
// failures with errors.Is across the RPC boundary instead of matching
// NFS status codes or message text.
var (
	// ErrAccessDenied reports a policy denial: the caller's credentials
	// do not grant the permission the operation needs.
	ErrAccessDenied = errors.New("discfs: access denied")
	// ErrNoCredentials qualifies an access denial observed before this
	// client submitted any credentials on the connection — the paper's
	// freshly-attached mode-000 state. It always accompanies
	// ErrAccessDenied, never replaces it.
	ErrNoCredentials = errors.New("discfs: no credentials submitted")
	// ErrStale reports a file handle that no longer names a live file
	// (removed, or its generation rolled).
	ErrStale = errors.New("discfs: stale file handle")
	// ErrNotAdmin is returned by administrative procedures when the
	// caller's key is not an administrator of the server.
	ErrNotAdmin = errors.New("discfs: not an administrator")
	// ErrRevoked reports a connection attempt with a revoked key,
	// rejected during the secure-channel handshake.
	ErrRevoked = errors.New("discfs: key revoked")
	// ErrNotExist reports a missing file or directory.
	ErrNotExist = errors.New("discfs: file does not exist")
	// ErrCredentialRejected reports a submitted credential the server's
	// KeyNote session refused (bad signature, unparsable assertion).
	ErrCredentialRejected = errors.New("discfs: credential rejected")
	// ErrThrottled reports server backpressure: per-principal admission
	// control rejected the request (NFS-level TRYLATER) or the RPC
	// transport refused it while saturated or draining (ServerBusy).
	// The operation did not run; back off and retry.
	ErrThrottled = errors.New("discfs: request throttled by server")
	// ErrXDev reports an operation spanning two federation shards that
	// must stay on one server — the EXDEV contract at a mount boundary.
	// Rename across shards fails with it; callers fall back to
	// copy-and-delete.
	ErrXDev = errors.New("discfs: cross-shard operation")
	// ErrPartialFence reports an administrative revocation that did not
	// reach every shard directly: the reachable shards applied it (and
	// their revocation feed will converge the rest), but the named
	// shards could not confirm. Match with errors.Is; errors.As a
	// *PartialFenceError for the per-shard detail.
	ErrPartialFence = errors.New("discfs: revocation did not reach every shard")
)

// PartialFenceError carries per-shard fence status for a RevokeKey or
// RevokeCredential fan-out that could not confirm on every shard:
// which shard addresses applied the revocation, which did not, and the
// per-shard errors (each wrapped with its shard address). The client
// fan-out is a hint — servers configured with feed peers replicate the
// entry to the unfenced shards — but until convergence is confirmed the
// admin must treat the named shards as open.
type PartialFenceError struct {
	Fenced   []string // shard addresses that applied the revocation
	Unfenced []string // shard addresses that did not confirm
	Errs     []error  // one per unfenced shard, wrapped with its address
}

func (e *PartialFenceError) Error() string {
	return fmt.Sprintf("%v: unfenced shards %v: %v", ErrPartialFence, e.Unfenced, errors.Join(e.Errs...))
}

// Is matches the ErrPartialFence sentinel.
func (e *PartialFenceError) Is(target error) bool { return target == ErrPartialFence }

// Unwrap exposes the per-shard errors to errors.Is/errors.As.
func (e *PartialFenceError) Unwrap() []error { return e.Errs }

// wireError translates an error observed through the RPC boundary into
// the taxonomy, preserving the original error in the chain so transport
// detail (e.g. the NFS status) stays reachable via errors.As.
func (c *Client) wireError(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrRevoked) {
		// Already classified — a poisoned shard link surfaces the
		// ErrRevoked-wrapped connect failure on every call.
		return err
	}
	if errors.Is(err, secchan.ErrKeyRevoked) {
		return fmt.Errorf("%w: %w", ErrRevoked, err)
	}
	if errors.Is(err, sunrpc.ErrServerBusy) {
		return fmt.Errorf("%w: %w", ErrThrottled, err)
	}
	switch nfs.StatOf(err) {
	case nfs.ErrAcces, nfs.ErrPerm:
		if !c.credsPresented.Load() {
			return fmt.Errorf("%w: %w: %w", ErrAccessDenied, ErrNoCredentials, err)
		}
		return fmt.Errorf("%w: %w", ErrAccessDenied, err)
	case nfs.ErrStale:
		return fmt.Errorf("%w: %w", ErrStale, err)
	case nfs.ErrNoEnt:
		return fmt.Errorf("%w: %w", ErrNotExist, err)
	case nfs.ErrTryLater:
		return fmt.Errorf("%w: %w", ErrThrottled, err)
	case nfs.ErrXDev:
		return fmt.Errorf("%w: %w", ErrXDev, err)
	}
	return err
}
