package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"discfs/internal/fed"
	"discfs/internal/keynote"
	"discfs/internal/metrics"
	"discfs/internal/nfs"
	"discfs/internal/vfs"
	"discfs/internal/xdr"
)

// Client is the DisCFS client: the cattach-equivalent. Dialing a server
// establishes the secure channel (the paper's IPsec tunnel), mounts the
// remote filesystem, and exposes file operations plus the credential
// procedures.
//
// With federation options (WithServers, WithShardSubtree, WithGraft)
// the client connects to every shard and routes each operation to the
// owning server; without them it is the classic single-server client
// (one shard, identity handle tagging, no routing).
type Client struct {
	shards   []*shard
	table    *fed.Table // nil unless federation is configured
	identity *keynote.KeyPair
	closed   atomic.Bool

	// Data-cache state (see datacache.go): per-handle block caches with
	// readahead and write-behind, shared by the Files opened on each
	// handle. Handles are shard-tagged, so one map spans all shards.
	dataCache dataCacheConfig
	dcMu      sync.Mutex
	dcaches   map[vfs.Handle]*handleCache

	// subDir caches each shard's handle for the shard-subtree
	// directory (every shard exports the same subtree path).
	subMu  sync.Mutex
	subDir map[int]vfs.Handle

	// credsPresented records whether this client successfully submitted
	// credentials (even ones the server already held); it distinguishes
	// "denied with no credentials presented" from a plain policy denial
	// in the error taxonomy.
	credsPresented atomic.Bool

	// Per-shard request/latency metrics, fed by an observer on every
	// RPC connection (main links and pool slots).
	reg       *metrics.Registry
	shardReqs *metrics.CounterVec
	shardLat  *metrics.HistogramVec
}

// A ClientOption configures Dial.
type ClientOption func(*dataCacheConfig)

// WithReadahead sets the number of cache blocks (one negotiated
// transfer each — ~512 KiB by default, 8 KiB against v2-era servers) the
// data cache prefetches ahead of a sequential read stream. n <= 0
// disables readahead; the default scales DefaultReadahead's byte budget
// to the granule.
func WithReadahead(n int) ClientOption {
	return func(cfg *dataCacheConfig) {
		if n <= 0 {
			n = -1
		}
		cfg.readahead = n
	}
}

// WithWriteBehind sets the write-behind window: how many dirty cache
// blocks (one negotiated transfer each) the data cache buffers
// client-side before throttling writers. n <= 1 keeps at most one block
// buffered; the default scales DefaultWriteBehind's byte budget to the
// granule.
func WithWriteBehind(n int) ClientOption {
	return func(cfg *dataCacheConfig) {
		if n < 1 {
			n = 1
		}
		cfg.writeBehind = n
	}
}

// WithNoDataCache disables the client-side data cache entirely: every
// File read and write becomes one synchronous NFS RPC, as in v1. Errors
// then surface on the call that hit them rather than at Sync/Close.
func WithNoDataCache() ClientOption {
	return func(cfg *dataCacheConfig) { cfg.disabled = true }
}

// WithMaxTransfer sets the transfer size the client proposes when
// attaching (bytes; clamped to [nfs.MaxData, nfs.MaxTransferLimit]).
// The server grants at most its own configured maximum; the granted
// size becomes the payload of every READ/WRITE RPC and the granule of
// the data cache. The default proposal is nfs.DefaultMaxTransfer
// (504 KiB); n = nfs.MaxData pins v2-era 8 KiB transfers. Under
// federation each shard negotiates independently from this proposal.
func WithMaxTransfer(n int) ClientOption {
	return func(cfg *dataCacheConfig) { cfg.maxTransfer = nfs.ClampTransfer(n) }
}

// WithNameCacheTTL sets how long cached attributes, name lookups and
// negative lookups stay valid before the client revalidates with the
// server (the actimeo knob of kernel NFS clients). Shorter values see
// remote changes sooner at the cost of more metadata RPCs; the default
// is nfs.DefaultAttrTTL (3 s). d <= 0 keeps the default.
func WithNameCacheTTL(d time.Duration) ClientOption {
	return func(cfg *dataCacheConfig) {
		if d > 0 {
			cfg.attrTTL = d
		}
	}
}

// WithServers federates the namespace across additional servers: the
// dialed address is shard 0 (the primary, exporting the logical root)
// and each addr here becomes the next shard. Partitioning is
// configured with WithShardSubtree and WithGraft; the same identity
// and credential chain are presented to every shard, each of which
// evaluates authority locally (KeyNote credentials are self-certifying
// — no shared session state exists between servers).
func WithServers(addrs ...string) ClientOption {
	return func(cfg *dataCacheConfig) {
		cfg.fedServers = append(cfg.fedServers, addrs...)
	}
}

// WithShardSubtree spreads the children of one directory across all
// shards by consistent hashing of the child name. Every shard must
// export the same directory path; a child lives on (and is created at)
// the shard its name hashes to, and listing the directory merges all
// shards. With a single server this is the identity configuration and
// changes nothing on the wire.
func WithShardSubtree(path string) ClientOption {
	return func(cfg *dataCacheConfig) { cfg.fedSubtree = path }
}

// WithGraft statically binds an absolute path to a shard, mount-style:
// resolving the path yields that shard's exported root, and everything
// beneath it lives there. The shard must not be 0 — the primary
// already exports the logical root.
func WithGraft(path string, shard int) ClientOption {
	return func(cfg *dataCacheConfig) {
		if cfg.fedGrafts == nil {
			cfg.fedGrafts = make(map[string]int)
		}
		cfg.fedGrafts[path] = shard
	}
}

// Dial connects to a DisCFS server at addr, authenticating as identity,
// and mounts the export. The returned client carries no credentials: per
// the paper, the attached directory appears with mode 000 until
// credentials are submitted. ctx bounds connection establishment, the
// secure-channel handshake and the mount; it does not outlive Dial.
//
// A server that has revoked identity's key refuses the attach with an
// error matching ErrRevoked.
//
// Options configure the client-side data cache (WithReadahead,
// WithWriteBehind, WithNoDataCache) and, for federated deployments,
// the shard set and routing (WithServers, WithShardSubtree, WithGraft).
func Dial(ctx context.Context, addr string, identity *keynote.KeyPair, opts ...ClientOption) (*Client, error) {
	var cfg dataCacheConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	c := &Client{
		identity:  identity,
		dataCache: cfg,
		dcaches:   make(map[vfs.Handle]*handleCache),
		subDir:    make(map[int]vfs.Handle),
	}
	spec := fed.Spec{Extra: cfg.fedServers, Grafts: cfg.fedGrafts, ShardSubtree: cfg.fedSubtree}
	if spec.Enabled() {
		table, err := fed.New(spec)
		if err != nil {
			return nil, err
		}
		c.table = table
	}
	c.reg = metrics.NewRegistry()
	c.shardReqs = c.reg.CounterVec("discfs_client_shard_requests_total",
		"RPCs issued, by federation shard", "shard")
	c.shardLat = c.reg.HistogramVec("discfs_client_shard_latency_seconds",
		"RPC latency, by federation shard", "shard", metrics.DefLatencyBuckets)
	c.reg.CounterFunc("discfs_redials_total",
		"lost connections transparently re-established (process-wide)", RedialsTotal)

	addrs := append([]string{addr}, cfg.fedServers...)
	for id, a := range addrs {
		sh, err := dialShard(ctx, c, id, a)
		if err != nil {
			for _, prev := range c.shards {
				prev.closePool()
				prev.link.Load().rpc.Close()
			}
			return nil, err
		}
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

// MaxTransfer reports the negotiated per-RPC transfer size of the
// primary connection (per-shard sizes may differ under federation).
func (c *Client) MaxTransfer() int { return int(c.shards[0].xfer) }

// Metrics exposes the client's registry: per-shard request and latency
// vectors plus the process-wide redial counter.
func (c *Client) Metrics() *metrics.Registry { return c.reg }

// primary returns shard 0: the server whose root is the logical root.
func (c *Client) primary() *shard { return c.shards[0] }

// shardOf routes a shard-tagged handle to its owning shard. Handles
// are only minted by this client's connections, so an out-of-range tag
// cannot normally occur; the primary absorbs it rather than panicking.
func (c *Client) shardOf(h vfs.Handle) *shard {
	id := nfs.ShardOfIno(h.Ino)
	if id <= 0 || id >= len(c.shards) {
		return c.shards[0]
	}
	return c.shards[id]
}

// Close tears down the connections. Unflushed write-behind data is
// abandoned (its flushes fail against the closed connection); call
// File.Close or File.Sync first for the error barrier.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.shutdownCaches()
	var first error
	for _, sh := range c.shards {
		sh.closePool()
		sh.mu.Lock()
		err := sh.link.Load().rpc.Close()
		sh.mu.Unlock()
		if first == nil {
			first = err
		}
	}
	return first
}

// Abort cuts the connections without the orderly cache shutdown —
// in-flight calls fail where they stand, as if the network dropped.
// The soak harness uses it to exercise the server's handling of peers
// that vanish mid-operation; real callers want Close.
func (c *Client) Abort() error {
	c.closed.Store(true)
	var first error
	for _, sh := range c.shards {
		sh.closePool()
		sh.mu.Lock()
		err := sh.link.Load().rpc.Close()
		sh.mu.Unlock()
		if first == nil {
			first = err
		}
	}
	return first
}

// NFS exposes the primary shard's NFS client for direct protocol
// access.
func (c *Client) NFS() *nfs.Client { return c.primary().nfsc(context.Background()) }

// Root returns the mounted root handle (the primary's root).
func (c *Client) Root() vfs.Handle { return c.primary().link.Load().root }

// Principal returns the client's own principal.
func (c *Client) Principal() keynote.Principal { return c.identity.Principal }

// ServerPrincipal returns the authenticated identity of the primary
// server.
func (c *Client) ServerPrincipal() keynote.Principal { return c.primary().server }

// Identity returns the client's key pair (for issuing delegations).
func (c *Client) Identity() *keynote.KeyPair { return c.identity }

// ---- extension procedures ----

// SubmitCredentialText submits credential assertion text (one or more
// assertions) to the server's persistent KeyNote session. Under
// federation the same chain is presented to every shard — that is the
// whole cross-server authority mechanism: each server evaluates the
// self-certifying chain locally. Returns the number of credentials
// newly accepted by the primary.
func (c *Client) SubmitCredentialText(ctx context.Context, text string) (int, error) {
	n := 0
	for i, sh := range c.shards {
		m, err := c.submitCredentialTo(ctx, sh, text)
		if err != nil {
			return n, err
		}
		if i == 0 {
			n = m
		}
	}
	c.credsPresented.Store(true)
	return n, nil
}

func (c *Client) submitCredentialTo(ctx context.Context, sh *shard, text string) (int, error) {
	e := xdr.NewEncoder()
	e.String(text)
	d, err := sh.live(ctx).rpc.Call(ctx, ExtProg, ExtVers, ExtSubmitCred, e.Bytes())
	if err != nil {
		return 0, err
	}
	defer nfs.RecycleReply(d)
	status := d.Uint32()
	n := d.Uint32()
	msg := d.String(4096)
	if err := d.Err(); err != nil {
		return 0, err
	}
	if status != extOK {
		return int(n), fmt.Errorf("%w: %s", ErrCredentialRejected, msg)
	}
	return int(n), nil
}

// SubmitCredentials submits parsed credentials.
func (c *Client) SubmitCredentials(ctx context.Context, creds ...*keynote.Assertion) (int, error) {
	var b strings.Builder
	for _, cr := range creds {
		b.WriteString(cr.Source)
		if !strings.HasSuffix(cr.Source, "\n") {
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return c.SubmitCredentialText(ctx, b.String())
}

// WhoAmI asks the primary server which principal this connection
// authenticated.
func (c *Client) WhoAmI(ctx context.Context) (keynote.Principal, error) {
	d, err := c.primary().live(ctx).rpc.Call(ctx, ExtProg, ExtVers, ExtWhoAmI, nil)
	if err != nil {
		return "", err
	}
	defer nfs.RecycleReply(d)
	p := d.String(4096)
	return keynote.Principal(p), d.Err()
}

// createLike runs CREATECRED or MKDIRCRED on the shard owning dir.
func (c *Client) createLike(ctx context.Context, proc uint32, dir vfs.Handle, name string, mode uint32) (vfs.Attr, string, error) {
	sh := c.shardOf(dir)
	ln := sh.live(ctx)
	e := xdr.NewEncoder()
	fh, err := ln.nfs.WireFH(dir)
	if err != nil {
		return vfs.Attr{}, "", c.wireError(err)
	}
	e.OpaqueFixed(fh[:])
	e.String(name)
	sa := nfs.NewSAttr()
	sa.Mode = mode
	sa.Encode(e)
	d, err := ln.rpc.Call(ctx, ExtProg, ExtVers, proc, e.Bytes())
	if err != nil {
		return vfs.Attr{}, "", err
	}
	defer nfs.RecycleReply(d) // DecodeWireFH copies the only alias
	if st := nfs.Stat(d.Uint32()); st != nfs.OK {
		return vfs.Attr{}, "", c.wireError(&nfs.Error{Stat: st})
	}
	raw := d.OpaqueFixed(nfs.FHSize)
	if err := d.Err(); err != nil {
		return vfs.Attr{}, "", err
	}
	h, err := ln.nfs.DecodeWireFH(raw)
	if err != nil {
		return vfs.Attr{}, "", err
	}
	fa := nfs.DecodeFAttr(d)
	cred := d.String(maxCredText)
	if err := d.Err(); err != nil {
		return vfs.Attr{}, "", err
	}
	attr := vfs.Attr{
		Handle: h,
		Mode:   fa.Mode & 0o7777,
		Size:   uint64(fa.Size),
		Nlink:  fa.Nlink,
		UID:    fa.UID,
		GID:    fa.GID,
		Atime:  fa.Atime,
		Mtime:  fa.Mtime,
		Ctime:  fa.Ctime,
	}
	switch fa.Type {
	case 1:
		attr.Type = vfs.TypeRegular
	case 2:
		attr.Type = vfs.TypeDir
	case 5:
		attr.Type = vfs.TypeSymlink
	}
	return attr, cred, nil
}

// CreateWithCredential creates a file and returns the server-issued
// credential granting the creator full access — the paper's added
// procedure.
func (c *Client) CreateWithCredential(ctx context.Context, dir vfs.Handle, name string, mode uint32) (vfs.Attr, string, error) {
	return c.createLike(ctx, ExtCreateCred, dir, name, mode)
}

// MkdirWithCredential creates a directory and returns the creator's
// credential.
func (c *Client) MkdirWithCredential(ctx context.Context, dir vfs.Handle, name string, mode uint32) (vfs.Attr, string, error) {
	return c.createLike(ctx, ExtMkdirCred, dir, name, mode)
}

// revokeOn runs one shard's leg of a revocation fan-out and returns the
// count/found word of its reply.
func (c *Client) revokeOn(ctx context.Context, sh *shard, proc uint32, arg string) (uint32, error) {
	e := xdr.NewEncoder()
	e.String(arg)
	d, err := sh.live(ctx).rpc.Call(ctx, ExtProg, ExtVers, proc, e.Bytes())
	if err != nil {
		return 0, c.wireError(err)
	}
	status := d.Uint32()
	n := d.Uint32()
	err = d.Err()
	nfs.RecycleReply(d)
	if err != nil {
		return 0, err
	}
	if status == extNotAdmin {
		return 0, ErrNotAdmin
	}
	return n, nil
}

// fenceFanout visits every shard with a revocation procedure —
// continuing past per-shard errors, never aborting early — and
// aggregates the replies. When any shard could not confirm, it returns
// a *PartialFenceError naming the unfenced shard addresses (unless
// every shard refused with ErrNotAdmin, which is reported as plain
// ErrNotAdmin). The fan-out is a hint for latency: servers configured
// with revocation-feed peers replicate the entry to the shards this
// client could not reach.
func (c *Client) fenceFanout(ctx context.Context, proc uint32, arg string) (uint32, error) {
	var agg uint32
	var pf PartialFenceError
	notAdmin := 0
	for _, sh := range c.shards {
		n, err := c.revokeOn(ctx, sh, proc, arg)
		if err != nil {
			if errors.Is(err, ErrNotAdmin) {
				notAdmin++
			}
			pf.Unfenced = append(pf.Unfenced, sh.addr)
			pf.Errs = append(pf.Errs, fmt.Errorf("shard %d (%s): %w", sh.id, sh.addr, err))
			continue
		}
		pf.Fenced = append(pf.Fenced, sh.addr)
		agg += n
	}
	if len(pf.Errs) == 0 {
		return agg, nil
	}
	if notAdmin == len(c.shards) {
		return agg, ErrNotAdmin
	}
	return agg, &pf
}

// RevokeKey asks every shard to revoke a principal (administrators
// only) — revocation, like authority, must span the federation. Every
// shard is visited even when some fail; the total number of credentials
// dropped on the shards that confirmed is returned alongside a
// *PartialFenceError (errors.Is(err, ErrPartialFence)) naming any shard
// that did not. Unfenced shards converge through the server-to-server
// revocation feed when the federation is configured with peers, but
// until then the admin must treat them as open.
func (c *Client) RevokeKey(ctx context.Context, target keynote.Principal) (int, error) {
	n, err := c.fenceFanout(ctx, ExtRevokeKey, string(target))
	return int(n), err
}

// RevokeCredential revokes one credential by its signature value on
// every shard (administrators only). It reports whether any confirming
// shard held the credential; per-shard failures aggregate into a
// *PartialFenceError exactly as with RevokeKey.
func (c *Client) RevokeCredential(ctx context.Context, signatureValue string) (bool, error) {
	n, err := c.fenceFanout(ctx, ExtRevokeCred, signatureValue)
	return n != 0, err
}

// ListCredentials returns the text of every credential in the
// federation, merged across all shards and deduplicated by signature
// value (administrators only) — the view an admin audits to see what
// the revocation feed actually converged. Any unreachable shard fails
// the listing, wrapped with the shard address, so a partial audit is
// never mistaken for a complete one.
func (c *Client) ListCredentials(ctx context.Context) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, sh := range c.shards {
		texts, err := c.listCredentialsOn(ctx, sh)
		if err != nil {
			if errors.Is(err, ErrNotAdmin) {
				return nil, err
			}
			return nil, fmt.Errorf("shard %d (%s): %w", sh.id, sh.addr, err)
		}
		for _, text := range texts {
			key := text
			if as, perr := keynote.ParseAssertions(text); perr == nil && len(as) == 1 && as[0].SignatureValue != "" {
				key = as[0].SignatureValue
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, text)
		}
	}
	return out, nil
}

// ListCredentialsOn lists one shard's session credentials by shard
// index (administrators only) — the per-shard view for auditing how a
// specific server's session differs from the federation's merged set.
func (c *Client) ListCredentialsOn(ctx context.Context, shard int) ([]string, error) {
	if shard < 0 || shard >= len(c.shards) {
		return nil, fmt.Errorf("discfs: no shard %d", shard)
	}
	return c.listCredentialsOn(ctx, c.shards[shard])
}

func (c *Client) listCredentialsOn(ctx context.Context, sh *shard) ([]string, error) {
	d, err := sh.live(ctx).rpc.Call(ctx, ExtProg, ExtVers, ExtListCreds, nil)
	if err != nil {
		return nil, c.wireError(err)
	}
	defer nfs.RecycleReply(d)
	status := d.Uint32()
	if status == extNotAdmin {
		return nil, ErrNotAdmin
	}
	n := d.Count(1 << 16)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.String(maxCredText))
	}
	return out, d.Err()
}

// ServerStats fetches the primary server's policy-engine statistics.
func (c *Client) ServerStats(ctx context.Context) (Stats, error) {
	d, err := c.primary().live(ctx).rpc.Call(ctx, ExtProg, ExtVers, ExtStats, nil)
	if err != nil {
		return Stats{}, err
	}
	defer nfs.RecycleReply(d)
	_ = d.Uint32() // status, always OK
	st := Stats{
		Queries:     d.Uint64(),
		CacheHits:   d.Uint64(),
		CacheMisses: d.Uint64(),
		Credentials: int(d.Uint32()),
		Decisions:   d.Uint64(),
		Denials:     d.Uint64(),
	}
	st.WriteQueueDepth = int(d.Uint64())
	st.WritesGathered = d.Uint64()
	st.BackendWrites = d.Uint64()
	st.Commits = d.Uint64()
	return st, d.Err()
}

// ---- delegation ----

// Delegate signs, with this client's key, a credential granting holder
// the given compliance value (e.g. "R", "RW") on the object with inode
// ino and everything beneath it — the paper's user-to-user sharing step
// (Bob issues Alice a credential, Figure 1). The credential is returned
// for transmission to the holder (e.g. via email); whoever holds it
// submits it before access. A shard-tagged ino (from a federated
// handle) is untagged: credentials speak the owning server's inode
// numbers, and remain valid when presented to every shard because only
// the owning shard's tree contains that ino.
func (c *Client) Delegate(ctx context.Context, holder keynote.Principal, ino uint64, value, comment string) (*keynote.Assertion, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return keynote.Sign(c.identity, keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(holder),
		Conditions: SubtreeConditions(nfs.UntagIno(ino), value, true, ""),
		Comment:    comment,
	})
}

// DelegateWithConditions is Delegate with an extra conditions clause
// ANDed in (e.g. `@hour >= 17 || @hour < 9` or an expiry bound on now).
func (c *Client) DelegateWithConditions(ctx context.Context, holder keynote.Principal, ino uint64, value, extra, comment string) (*keynote.Assertion, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return keynote.Sign(c.identity, keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(holder),
		Conditions: SubtreeConditions(nfs.UntagIno(ino), value, true, extra),
		Comment:    comment,
	})
}

// ---- path convenience API ----

// joinPath appends one component to a cleaned absolute path.
func joinPath(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// splitParts splits a slash path into its non-empty components.
func splitParts(path string) []string {
	parts := make([]string, 0, 8)
	for _, p := range strings.Split(path, "/") {
		if p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

// resolveChild resolves one path component from dir (whose cleaned
// absolute path is dirPath), applying federation routing: a graft
// point resolves to its target shard's root, and a child of the shard
// subtree resolves on the shard its name hashes to.
func (c *Client) resolveChild(ctx context.Context, dir vfs.Handle, dirPath, name string) (vfs.Attr, error) {
	if c.table != nil {
		if g, ok := c.table.Graft(joinPath(dirPath, name)); ok {
			sh := c.shards[g]
			return sh.nfsc(ctx).GetAttr(ctx, sh.root(ctx))
		}
		if c.table.Sharded(dirPath) {
			own := c.table.Owner(name)
			sdir, err := c.subtreeDir(ctx, own)
			if err != nil {
				return vfs.Attr{}, err
			}
			return c.shards[own].nfsc(ctx).Lookup(ctx, sdir, name)
		}
	}
	sh := c.shardOf(dir)
	return sh.nfsc(ctx).Lookup(ctx, dir, name)
}

// subtreeDir resolves (and caches) one shard's handle for the
// shard-subtree directory. Every shard must export the subtree path in
// its own tree; a shard that lacks it fails here with a routing error.
func (c *Client) subtreeDir(ctx context.Context, shard int) (vfs.Handle, error) {
	c.subMu.Lock()
	h, ok := c.subDir[shard]
	c.subMu.Unlock()
	if ok {
		return h, nil
	}
	sh := c.shards[shard]
	cur := sh.root(ctx)
	for _, part := range splitParts(c.table.ShardSubtree()) {
		a, err := sh.nfsc(ctx).Lookup(ctx, cur, part)
		if err != nil {
			return vfs.Handle{}, fmt.Errorf("core: shard %d (%s) lacks shard subtree %s: %w",
				shard, sh.addr, c.table.ShardSubtree(), c.wireError(err))
		}
		cur = a.Handle
	}
	c.subMu.Lock()
	c.subDir[shard] = cur
	c.subMu.Unlock()
	return cur, nil
}

// ResolvePath walks a slash-separated path from the root.
func (c *Client) ResolvePath(ctx context.Context, path string) (vfs.Attr, error) {
	sh := c.primary()
	cur := sh.root(ctx)
	attr, err := sh.nfsc(ctx).GetAttr(ctx, cur)
	if err != nil {
		return vfs.Attr{}, c.wireError(err)
	}
	curPath := "/"
	for _, part := range strings.Split(path, "/") {
		if part == "" {
			continue
		}
		attr, err = c.resolveChild(ctx, cur, curPath, part)
		if err != nil {
			return vfs.Attr{}, c.wireError(err)
		}
		cur = attr.Handle
		curPath = joinPath(curPath, part)
	}
	return attr, nil
}

// splitPath returns (parent directory handle, leaf name). The parent
// handle is routed for the leaf: a leaf directly under the shard
// subtree returns the owning shard's copy of the subtree directory, so
// creations land on (and lookups address) the right server.
func (c *Client) splitPath(ctx context.Context, path string) (vfs.Handle, string, error) {
	parts := splitParts(path)
	if len(parts) == 0 {
		return vfs.Handle{}, "", fmt.Errorf("core: empty path")
	}
	dir := c.primary().root(ctx)
	dirPath := "/"
	for _, p := range parts[:len(parts)-1] {
		a, err := c.resolveChild(ctx, dir, dirPath, p)
		if err != nil {
			return vfs.Handle{}, "", c.wireError(err)
		}
		dir = a.Handle
		dirPath = joinPath(dirPath, p)
	}
	leaf := parts[len(parts)-1]
	if c.table != nil && c.table.Sharded(dirPath) {
		sdir, err := c.subtreeDir(ctx, c.table.Owner(leaf))
		if err != nil {
			return vfs.Handle{}, "", err
		}
		dir = sdir
	}
	return dir, leaf, nil
}

// ReadFile reads a whole file by path.
func (c *Client) ReadFile(ctx context.Context, path string) ([]byte, error) {
	attr, err := c.ResolvePath(ctx, path)
	if err != nil {
		return nil, err
	}
	data, err := c.shardOf(attr.Handle).nfsc(ctx).ReadAll(ctx, attr.Handle)
	return data, c.wireError(err)
}

// WriteFile creates (or truncates) a file by path and writes data. It
// returns the file's attributes and, when the file was newly created,
// the creator credential text.
func (c *Client) WriteFile(ctx context.Context, path string, data []byte) (vfs.Attr, string, error) {
	dir, name, err := c.splitPath(ctx, path)
	if err != nil {
		return vfs.Attr{}, "", err
	}
	sh := c.shardOf(dir)
	var cred string
	attr, err := sh.nfsc(ctx).Lookup(ctx, dir, name)
	if err == nil {
		sa := nfs.NewSAttr()
		sa.Size = 0
		if _, err := sh.nfsc(ctx).SetAttr(ctx, attr.Handle, sa); err != nil {
			return vfs.Attr{}, "", c.wireError(err)
		}
	} else if werr := c.wireError(err); errors.Is(werr, ErrNotExist) {
		attr, cred, err = c.CreateWithCredential(ctx, dir, name, 0o644)
		if err != nil {
			return vfs.Attr{}, "", err
		}
	} else {
		// A throttled or otherwise-failed lookup is not "missing": racing
		// into CREATE would turn a transient refusal into EEXIST.
		return vfs.Attr{}, "", werr
	}
	if err := sh.nfsc(ctx).WriteAll(ctx, attr.Handle, data); err != nil {
		return vfs.Attr{}, "", c.wireError(err)
	}
	// Durability barrier: against a write-behind server the WRITEs above
	// are unstable until committed (WriteFile promises written-on-return,
	// like the File Close barrier does).
	if _, _, err := sh.nfsc(ctx).Commit(ctx, attr.Handle); err != nil {
		return vfs.Attr{}, "", c.wireError(err)
	}
	return attr, cred, nil
}

// MkdirPath creates one directory by path, returning the credential.
func (c *Client) MkdirPath(ctx context.Context, path string) (vfs.Attr, string, error) {
	dir, name, err := c.splitPath(ctx, path)
	if err != nil {
		return vfs.Attr{}, "", err
	}
	return c.MkdirWithCredential(ctx, dir, name, 0o755)
}

// Rename renames fromPath to toPath. Under federation both must live
// on the same shard: two independent servers cannot rename atomically,
// so a cross-shard rename fails with ErrXDev — the classic EXDEV
// contract at a mount boundary; callers fall back to copy-and-delete.
func (c *Client) Rename(ctx context.Context, fromPath, toPath string) error {
	fromDir, fromName, err := c.splitPath(ctx, fromPath)
	if err != nil {
		return err
	}
	toDir, toName, err := c.splitPath(ctx, toPath)
	if err != nil {
		return err
	}
	sh := c.shardOf(fromDir)
	if sh != c.shardOf(toDir) {
		return fmt.Errorf("core: rename %s -> %s: %w", fromPath, toPath, ErrXDev)
	}
	return c.wireError(sh.nfsc(ctx).Rename(ctx, fromDir, fromName, toDir, toName))
}

// List returns the directory entries at path. Listing the shard
// subtree merges every shard's children (deduplicated by name, sorted).
func (c *Client) List(ctx context.Context, path string) ([]nfs.DirEntry, error) {
	if c.table != nil && c.table.Sharded(fed.Clean(path)) {
		return c.listSharded(ctx)
	}
	attr, err := c.ResolvePath(ctx, path)
	if err != nil {
		return nil, err
	}
	ents, err := c.shardOf(attr.Handle).nfsc(ctx).ReadDirAll(ctx, attr.Handle)
	return ents, c.wireError(err)
}

func (c *Client) listSharded(ctx context.Context) ([]nfs.DirEntry, error) {
	seen := make(map[string]bool)
	var out []nfs.DirEntry
	for id := range c.shards {
		sdir, err := c.subtreeDir(ctx, id)
		if err != nil {
			return nil, err
		}
		ents, err := c.shards[id].nfsc(ctx).ReadDirAll(ctx, sdir)
		if err != nil {
			return nil, c.wireError(err)
		}
		for _, e := range ents {
			if seen[e.Name] {
				continue
			}
			seen[e.Name] = true
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// DialWithCredentials attaches and immediately submits the given
// credentials — the wallet pattern: a user keeps received credentials
// locally and presents them at every attach, as the paper's clients
// resubmit (or rely on server-side caching of) their chains.
// Clients needing both credentials and cache options can Dial with the
// options and call SubmitCredentials themselves.
func DialWithCredentials(ctx context.Context, addr string, identity *keynote.KeyPair, creds ...*keynote.Assertion) (*Client, error) {
	c, err := Dial(ctx, addr, identity)
	if err != nil {
		return nil, err
	}
	if len(creds) > 0 {
		if _, err := c.SubmitCredentials(ctx, creds...); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// WalkFunc is called by Walk for every visited entry with its
// slash-separated path from the mount root.
type WalkFunc func(path string, attr vfs.Attr) error

// Walk traverses the mounted tree depth-first, calling fn for every
// entry the client's credentials allow it to see. Permission errors on
// individual subtrees are skipped (the walk visits what the caller may
// see, like ls -R under Unix permissions); other errors abort. Under
// federation the walk spans shards: the shard subtree is the merged,
// name-sorted union of every shard's children (a shard that denies
// access — e.g. after a revocation there — simply drops out of the
// merge), and graft points are descended into on their target shard.
func (c *Client) Walk(ctx context.Context, fn WalkFunc) error {
	return c.walkDir(ctx, c.primary().root(ctx), "", fn)
}

// walkEnt is one directory entry paired with the shard and parent
// directory it came from, so attribute fallback lookups address the
// right server.
type walkEnt struct {
	ent    nfs.DirEntryPlus
	sh     *shard
	parent vfs.Handle
}

// shardDenied reports errors on which a merged walk drops the shard's
// contribution instead of failing: the shard denied access, or this
// identity has been revoked there (the server cuts a revoked
// principal's connections, and the redial's poisoned link surfaces
// ErrRevoked).
func shardDenied(err error) bool {
	return nfs.StatOf(err) == nfs.ErrAcces || errors.Is(err, ErrRevoked)
}

// readDirRetry lists dir on sh, retrying once when the shard's link
// died mid-call — a revocation landing on the server cuts the
// connection under the walk's feet. The retry goes through the redial
// path, which either restores the link or (when the server refuses the
// handshake for a revoked identity) poisons it with ErrRevoked, the
// error the walk's drop conditions understand.
func (c *Client) readDirRetry(ctx context.Context, sh *shard, dir vfs.Handle) ([]nfs.DirEntryPlus, error) {
	ents, err := sh.attrc(ctx).ReadDirPlusAll(ctx, dir)
	if err != nil && ctx.Err() == nil && sh.link.Load().rpc.Broken() {
		ents, err = sh.attrc(ctx).ReadDirPlusAll(ctx, dir)
	}
	return ents, err
}

func (c *Client) walkDir(ctx context.Context, dir vfs.Handle, prefix string, fn WalkFunc) error {
	ents, err := c.walkList(ctx, dir, prefix)
	if err != nil {
		return err
	}
	for _, we := range ents {
		e := we.ent
		attr := e.Attr
		if !e.HasAttr {
			var err error
			attr, err = we.sh.attrc(ctx).Lookup(ctx, we.parent, e.Name)
			if err != nil {
				werr := c.wireError(err)
				if st := nfs.StatOf(err); st == nfs.ErrAcces || st == nfs.ErrNoEnt || errors.Is(werr, ErrRevoked) {
					continue
				}
				return werr
			}
		}
		path := prefix + "/" + e.Name
		if err := fn(path, attr); err != nil {
			return err
		}
		if attr.Type == vfs.TypeDir {
			if err := c.walkDir(ctx, attr.Handle, path, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// walkList lists one directory for Walk, applying federation routing.
// One batched listing carries the names and (usually) the attributes;
// entries whose attributes the server could not piggyback fall back to
// individual cached lookups. Against servers without READDIRPLUS the
// call itself degrades to READDIR plus per-name LOOKUP.
func (c *Client) walkList(ctx context.Context, dir vfs.Handle, prefix string) ([]walkEnt, error) {
	dirPath := prefix
	if dirPath == "" {
		dirPath = "/"
	}
	var out []walkEnt
	if c.table != nil && c.table.Sharded(dirPath) {
		// The shard subtree is the union of every shard's copy; a shard
		// that refuses the listing (revoked or never authorized there)
		// contributes nothing rather than cutting the whole walk.
		seen := make(map[string]bool)
		for id := range c.shards {
			sdir, err := c.subtreeDir(ctx, id)
			if err != nil {
				if errors.Is(err, ErrAccessDenied) || errors.Is(err, ErrRevoked) {
					continue
				}
				return nil, err
			}
			ents, err := c.readDirRetry(ctx, c.shards[id], sdir)
			if err != nil {
				if shardDenied(err) {
					continue
				}
				return nil, c.wireError(err)
			}
			for _, e := range ents {
				if seen[e.Name] {
					continue
				}
				seen[e.Name] = true
				out = append(out, walkEnt{e, c.shards[id], sdir})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ent.Name < out[j].ent.Name })
		return out, nil
	}
	sh := c.shardOf(dir)
	ents, err := c.readDirRetry(ctx, sh, dir)
	if err != nil {
		if shardDenied(err) {
			return nil, nil
		}
		return nil, c.wireError(err)
	}
	for _, e := range ents {
		out = append(out, walkEnt{e, sh, dir})
	}
	if c.table != nil {
		// Graft points surface as entries of the target shard's root,
		// whether or not the parent holds a placeholder of the same name.
		for _, name := range c.table.GraftsUnder(dirPath) {
			g, _ := c.table.Graft(joinPath(dirPath, name))
			gsh := c.shards[g]
			groot := gsh.root(ctx)
			a, err := gsh.attrc(ctx).GetAttr(ctx, groot)
			if err != nil {
				if shardDenied(err) {
					continue
				}
				return nil, c.wireError(err)
			}
			ge := walkEnt{nfs.DirEntryPlus{Name: name, Handle: a.Handle, Attr: a, HasAttr: true}, gsh, groot}
			replaced := false
			for i := range out {
				if out[i].ent.Name == name {
					out[i], replaced = ge, true
					break
				}
			}
			if !replaced {
				out = append(out, ge)
			}
		}
	}
	return out, nil
}
