package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"discfs/internal/keynote"
	"discfs/internal/nfs"
	"discfs/internal/secchan"
	"discfs/internal/sunrpc"
	"discfs/internal/vfs"
	"discfs/internal/xdr"
)

// Client is the DisCFS client: the cattach-equivalent. Dialing a server
// establishes the secure channel (the paper's IPsec tunnel), mounts the
// remote filesystem, and exposes file operations plus the credential
// procedures.
type Client struct {
	conn     *secchan.Conn
	rpc      *sunrpc.Client
	nfs      *nfs.Client
	attrs    *nfs.CachingClient // attribute cache, backs open revalidation
	root     vfs.Handle
	addr     string
	identity *keynote.KeyPair
	server   keynote.Principal

	// xfer is the negotiated per-connection transfer size: the payload
	// of one READ/WRITE RPC, and the granule of the data cache. 8 KiB
	// against servers predating the negotiation.
	xfer uint32

	// pool holds extra data-path connections (the nconnect pattern of
	// modern NFS clients): flush workers and readahead fetches spread
	// across them, so the per-connection serialization of the secure
	// channel (crypto, socket writes) stops bounding sequential
	// throughput. Dialed lazily; on failure the main connection serves.
	poolClosed atomic.Bool
	pool       []ioConn

	// Data-cache state (see datacache.go): per-handle block caches with
	// readahead and write-behind, shared by the Files opened on each
	// handle.
	dataCache dataCacheConfig
	dcMu      sync.Mutex
	dcaches   map[vfs.Handle]*handleCache

	// credsPresented records whether this connection successfully
	// submitted credentials (even ones the server already held); it
	// distinguishes "denied with no credentials presented" from a plain
	// policy denial in the error taxonomy.
	credsPresented atomic.Bool
}

// A ClientOption configures Dial.
type ClientOption func(*dataCacheConfig)

// WithReadahead sets the number of cache blocks (one negotiated
// transfer each — ~512 KiB by default, 8 KiB against v2-era servers) the
// data cache prefetches ahead of a sequential read stream. n <= 0
// disables readahead; the default scales DefaultReadahead's byte budget
// to the granule.
func WithReadahead(n int) ClientOption {
	return func(cfg *dataCacheConfig) {
		if n <= 0 {
			n = -1
		}
		cfg.readahead = n
	}
}

// WithWriteBehind sets the write-behind window: how many dirty cache
// blocks (one negotiated transfer each) the data cache buffers
// client-side before throttling writers. n <= 1 keeps at most one block
// buffered; the default scales DefaultWriteBehind's byte budget to the
// granule.
func WithWriteBehind(n int) ClientOption {
	return func(cfg *dataCacheConfig) {
		if n < 1 {
			n = 1
		}
		cfg.writeBehind = n
	}
}

// WithNoDataCache disables the client-side data cache entirely: every
// File read and write becomes one synchronous NFS RPC, as in v1. Errors
// then surface on the call that hit them rather than at Sync/Close.
func WithNoDataCache() ClientOption {
	return func(cfg *dataCacheConfig) { cfg.disabled = true }
}

// WithMaxTransfer sets the transfer size the client proposes when
// attaching (bytes; clamped to [nfs.MaxData, nfs.MaxTransferLimit]).
// The server grants at most its own configured maximum; the granted
// size becomes the payload of every READ/WRITE RPC and the granule of
// the data cache. The default proposal is nfs.DefaultMaxTransfer
// (504 KiB); n = nfs.MaxData pins v2-era 8 KiB transfers.
func WithMaxTransfer(n int) ClientOption {
	return func(cfg *dataCacheConfig) { cfg.maxTransfer = nfs.ClampTransfer(n) }
}

// WithNameCacheTTL sets how long cached attributes, name lookups and
// negative lookups stay valid before the client revalidates with the
// server (the actimeo knob of kernel NFS clients). Shorter values see
// remote changes sooner at the cost of more metadata RPCs; the default
// is nfs.DefaultAttrTTL (3 s). d <= 0 keeps the default.
func WithNameCacheTTL(d time.Duration) ClientOption {
	return func(cfg *dataCacheConfig) {
		if d > 0 {
			cfg.attrTTL = d
		}
	}
}

// Dial connects to a DisCFS server at addr, authenticating as identity,
// and mounts the export. The returned client carries no credentials: per
// the paper, the attached directory appears with mode 000 until
// credentials are submitted. ctx bounds connection establishment, the
// secure-channel handshake and the mount; it does not outlive Dial.
//
// A server that has revoked identity's key refuses the attach with an
// error matching ErrRevoked.
//
// Options configure the client-side data cache (WithReadahead,
// WithWriteBehind, WithNoDataCache); with none, files opened on the
// client read and write through a block cache with the defaults.
func Dial(ctx context.Context, addr string, identity *keynote.KeyPair, opts ...ClientOption) (*Client, error) {
	conn, err := secchan.DialContext(ctx, addr, secchan.Config{Identity: identity})
	if err != nil {
		if errors.Is(err, secchan.ErrKeyRevoked) {
			return nil, fmt.Errorf("%w: %w", ErrRevoked, err)
		}
		return nil, err
	}
	rpc := sunrpc.NewClient(conn)
	nc := nfs.NewClient(rpc)
	root, err := nc.Mount(ctx, "/discfs")
	if err != nil {
		rpc.Close()
		return nil, fmt.Errorf("core: mount: %w", err)
	}
	var cfg dataCacheConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	// Negotiate the connection's transfer size (FSINFO-style): the
	// client proposes, the server clamps. Servers predating the
	// extension grant the v2 baseline; only a transport failure is an
	// error.
	xfer, err := nc.Negotiate(ctx, cfg.maxTransfer)
	if err != nil {
		rpc.Close()
		return nil, fmt.Errorf("core: negotiate transfer size: %w", err)
	}
	return &Client{
		conn:      conn,
		rpc:       rpc,
		nfs:       nc,
		attrs:     nfs.NewCachingClient(nc, cfg.attrTTL),
		root:      root,
		addr:      addr,
		identity:  identity,
		server:    conn.Peer(),
		xfer:      xfer,
		dataCache: cfg,
		dcaches:   make(map[vfs.Handle]*handleCache),
		pool:      make([]ioConn, ioPoolSize),
	}, nil
}

// MaxTransfer reports the negotiated per-RPC transfer size of this
// connection.
func (c *Client) MaxTransfer() int { return int(c.xfer) }

// ioPoolSize is the number of extra data-path connections a client may
// open (in addition to the main connection).
const ioPoolSize = 8

// ioConn is one lazily dialed data-path connection slot. The per-slot
// mutex keeps a slow first dial from serializing the rest of the pool.
type ioConn struct {
	mu    sync.Mutex
	tried bool
	rpc   *sunrpc.Client
	nfs   *nfs.Client
}

// dataConn returns an NFS client for bulk data transfer number i,
// dialing the pool slot on first use. Any dial failure falls back to
// the main connection, permanently for that slot.
func (c *Client) dataConn(ctx context.Context, i int64) *nfs.Client {
	if len(c.pool) == 0 || c.poolClosed.Load() {
		return c.nfs
	}
	s := &c.pool[int(i)%len(c.pool)]
	s.mu.Lock()
	if !s.tried {
		s.tried = true
		conn, err := secchan.DialContext(ctx, c.addr, secchan.Config{Identity: c.identity})
		switch {
		case err == nil && c.poolClosed.Load():
			// A Close that raced this dial wins: abandon the connection
			// rather than leak it past closePool.
			conn.Close()
		case err == nil:
			s.rpc = sunrpc.NewClient(conn)
			s.nfs = nfs.NewClient(s.rpc)
			// Same server, same grant: adopt the main connection's
			// negotiated size without a second FSINFO round trip (the
			// server-side bound is global, not per-connection).
			s.nfs.SetMaxData(c.xfer)
		case ctx.Err() != nil:
			// The triggering operation's context expired mid-dial; that
			// says nothing about the server, so let a later caller
			// retry rather than downgrade the slot forever.
			s.tried = false
		}
	}
	nc := s.nfs
	s.mu.Unlock()
	if nc == nil {
		return c.nfs
	}
	return nc
}

// closePool tears down the data-path connections and stops new dials.
func (c *Client) closePool() {
	c.poolClosed.Store(true)
	for i := range c.pool {
		s := &c.pool[i]
		s.mu.Lock()
		if s.rpc != nil {
			s.rpc.Close()
			s.rpc, s.nfs = nil, nil
		}
		s.mu.Unlock()
	}
}

// Close tears down the connection. Unflushed write-behind data is
// abandoned (its flushes fail against the closed connection); call
// File.Close or File.Sync first for the error barrier.
func (c *Client) Close() error {
	c.shutdownCaches()
	c.closePool()
	return c.rpc.Close()
}

// Abort cuts the connections without the orderly cache shutdown —
// in-flight calls fail where they stand, as if the network dropped.
// The soak harness uses it to exercise the server's handling of peers
// that vanish mid-operation; real callers want Close.
func (c *Client) Abort() error {
	c.closePool()
	return c.rpc.Close()
}

// NFS exposes the NFS client for direct protocol access.
func (c *Client) NFS() *nfs.Client { return c.nfs }

// Root returns the mounted root handle.
func (c *Client) Root() vfs.Handle { return c.root }

// Principal returns the client's own principal.
func (c *Client) Principal() keynote.Principal { return c.identity.Principal }

// ServerPrincipal returns the authenticated server identity.
func (c *Client) ServerPrincipal() keynote.Principal { return c.server }

// Identity returns the client's key pair (for issuing delegations).
func (c *Client) Identity() *keynote.KeyPair { return c.identity }

// ---- extension procedures ----

// SubmitCredentialText submits credential assertion text (one or more
// assertions) to the server's persistent KeyNote session. It returns the
// number of newly accepted credentials.
func (c *Client) SubmitCredentialText(ctx context.Context, text string) (int, error) {
	e := xdr.NewEncoder()
	e.String(text)
	d, err := c.rpc.Call(ctx, ExtProg, ExtVers, ExtSubmitCred, e.Bytes())
	if err != nil {
		return 0, err
	}
	defer nfs.RecycleReply(d)
	status := d.Uint32()
	n := d.Uint32()
	msg := d.String(4096)
	if err := d.Err(); err != nil {
		return 0, err
	}
	if status != extOK {
		return int(n), fmt.Errorf("%w: %s", ErrCredentialRejected, msg)
	}
	c.credsPresented.Store(true)
	return int(n), nil
}

// SubmitCredentials submits parsed credentials.
func (c *Client) SubmitCredentials(ctx context.Context, creds ...*keynote.Assertion) (int, error) {
	var b strings.Builder
	for _, cr := range creds {
		b.WriteString(cr.Source)
		if !strings.HasSuffix(cr.Source, "\n") {
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return c.SubmitCredentialText(ctx, b.String())
}

// WhoAmI asks the server which principal this connection authenticated.
func (c *Client) WhoAmI(ctx context.Context) (keynote.Principal, error) {
	d, err := c.rpc.Call(ctx, ExtProg, ExtVers, ExtWhoAmI, nil)
	if err != nil {
		return "", err
	}
	defer nfs.RecycleReply(d)
	p := d.String(4096)
	return keynote.Principal(p), d.Err()
}

// createLike runs CREATECRED or MKDIRCRED.
func (c *Client) createLike(ctx context.Context, proc uint32, dir vfs.Handle, name string, mode uint32) (vfs.Attr, string, error) {
	e := xdr.NewEncoder()
	fh := nfs.EncodeFH(dir)
	e.OpaqueFixed(fh[:])
	e.String(name)
	sa := nfs.NewSAttr()
	sa.Mode = mode
	sa.Encode(e)
	d, err := c.rpc.Call(ctx, ExtProg, ExtVers, proc, e.Bytes())
	if err != nil {
		return vfs.Attr{}, "", err
	}
	defer nfs.RecycleReply(d) // DecodeFH copies the only alias
	if st := nfs.Stat(d.Uint32()); st != nfs.OK {
		return vfs.Attr{}, "", c.wireError(&nfs.Error{Stat: st})
	}
	raw := d.OpaqueFixed(nfs.FHSize)
	if err := d.Err(); err != nil {
		return vfs.Attr{}, "", err
	}
	h, err := nfs.DecodeFH(raw)
	if err != nil {
		return vfs.Attr{}, "", err
	}
	fa := nfs.DecodeFAttr(d)
	cred := d.String(maxCredText)
	if err := d.Err(); err != nil {
		return vfs.Attr{}, "", err
	}
	attr := vfs.Attr{
		Handle: h,
		Mode:   fa.Mode & 0o7777,
		Size:   uint64(fa.Size),
		Nlink:  fa.Nlink,
		UID:    fa.UID,
		GID:    fa.GID,
		Atime:  fa.Atime,
		Mtime:  fa.Mtime,
		Ctime:  fa.Ctime,
	}
	switch fa.Type {
	case 1:
		attr.Type = vfs.TypeRegular
	case 2:
		attr.Type = vfs.TypeDir
	case 5:
		attr.Type = vfs.TypeSymlink
	}
	return attr, cred, nil
}

// CreateWithCredential creates a file and returns the server-issued
// credential granting the creator full access — the paper's added
// procedure.
func (c *Client) CreateWithCredential(ctx context.Context, dir vfs.Handle, name string, mode uint32) (vfs.Attr, string, error) {
	return c.createLike(ctx, ExtCreateCred, dir, name, mode)
}

// MkdirWithCredential creates a directory and returns the creator's
// credential.
func (c *Client) MkdirWithCredential(ctx context.Context, dir vfs.Handle, name string, mode uint32) (vfs.Attr, string, error) {
	return c.createLike(ctx, ExtMkdirCred, dir, name, mode)
}

// RevokeKey asks the server to revoke a principal (administrators only).
// It returns the number of credentials dropped.
func (c *Client) RevokeKey(ctx context.Context, target keynote.Principal) (int, error) {
	e := xdr.NewEncoder()
	e.String(string(target))
	d, err := c.rpc.Call(ctx, ExtProg, ExtVers, ExtRevokeKey, e.Bytes())
	if err != nil {
		return 0, err
	}
	defer nfs.RecycleReply(d)
	status := d.Uint32()
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return 0, err
	}
	if status == extNotAdmin {
		return 0, ErrNotAdmin
	}
	return int(n), nil
}

// RevokeCredential revokes one credential by its signature value
// (administrators only). It reports whether the credential was present.
func (c *Client) RevokeCredential(ctx context.Context, signatureValue string) (bool, error) {
	e := xdr.NewEncoder()
	e.String(signatureValue)
	d, err := c.rpc.Call(ctx, ExtProg, ExtVers, ExtRevokeCred, e.Bytes())
	if err != nil {
		return false, err
	}
	defer nfs.RecycleReply(d)
	status := d.Uint32()
	found := d.Bool()
	if err := d.Err(); err != nil {
		return false, err
	}
	if status == extNotAdmin {
		return false, ErrNotAdmin
	}
	return found, nil
}

// ListCredentials returns the text of every credential in the server's
// session (administrators only).
func (c *Client) ListCredentials(ctx context.Context) ([]string, error) {
	d, err := c.rpc.Call(ctx, ExtProg, ExtVers, ExtListCreds, nil)
	if err != nil {
		return nil, err
	}
	defer nfs.RecycleReply(d)
	status := d.Uint32()
	if status == extNotAdmin {
		return nil, ErrNotAdmin
	}
	n := d.Count(1 << 16)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.String(maxCredText))
	}
	return out, d.Err()
}

// ServerStats fetches the policy-engine statistics.
func (c *Client) ServerStats(ctx context.Context) (Stats, error) {
	d, err := c.rpc.Call(ctx, ExtProg, ExtVers, ExtStats, nil)
	if err != nil {
		return Stats{}, err
	}
	defer nfs.RecycleReply(d)
	_ = d.Uint32() // status, always OK
	st := Stats{
		Queries:     d.Uint64(),
		CacheHits:   d.Uint64(),
		CacheMisses: d.Uint64(),
		Credentials: int(d.Uint32()),
		Decisions:   d.Uint64(),
		Denials:     d.Uint64(),
	}
	st.WriteQueueDepth = int(d.Uint64())
	st.WritesGathered = d.Uint64()
	st.BackendWrites = d.Uint64()
	st.Commits = d.Uint64()
	return st, d.Err()
}

// ---- delegation ----

// Delegate signs, with this client's key, a credential granting holder
// the given compliance value (e.g. "R", "RW") on the object with inode
// ino and everything beneath it — the paper's user-to-user sharing step
// (Bob issues Alice a credential, Figure 1). The credential is returned
// for transmission to the holder (e.g. via email); whoever holds it
// submits it before access.
func (c *Client) Delegate(ctx context.Context, holder keynote.Principal, ino uint64, value, comment string) (*keynote.Assertion, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return keynote.Sign(c.identity, keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(holder),
		Conditions: SubtreeConditions(ino, value, true, ""),
		Comment:    comment,
	})
}

// DelegateWithConditions is Delegate with an extra conditions clause
// ANDed in (e.g. `@hour >= 17 || @hour < 9` or an expiry bound on now).
func (c *Client) DelegateWithConditions(ctx context.Context, holder keynote.Principal, ino uint64, value, extra, comment string) (*keynote.Assertion, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return keynote.Sign(c.identity, keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(holder),
		Conditions: SubtreeConditions(ino, value, true, extra),
		Comment:    comment,
	})
}

// ---- path convenience API ----

// ResolvePath walks a slash-separated path from the root.
func (c *Client) ResolvePath(ctx context.Context, path string) (vfs.Attr, error) {
	cur := c.root
	attr, err := c.nfs.GetAttr(ctx, cur)
	if err != nil {
		return vfs.Attr{}, c.wireError(err)
	}
	for _, part := range strings.Split(path, "/") {
		if part == "" {
			continue
		}
		attr, err = c.nfs.Lookup(ctx, cur, part)
		if err != nil {
			return vfs.Attr{}, c.wireError(err)
		}
		cur = attr.Handle
	}
	return attr, nil
}

// splitPath returns (parent directory handle, leaf name).
func (c *Client) splitPath(ctx context.Context, path string) (vfs.Handle, string, error) {
	parts := make([]string, 0, 8)
	for _, p := range strings.Split(path, "/") {
		if p != "" {
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return vfs.Handle{}, "", fmt.Errorf("core: empty path")
	}
	dir := c.root
	for _, p := range parts[:len(parts)-1] {
		a, err := c.nfs.Lookup(ctx, dir, p)
		if err != nil {
			return vfs.Handle{}, "", c.wireError(err)
		}
		dir = a.Handle
	}
	return dir, parts[len(parts)-1], nil
}

// ReadFile reads a whole file by path.
func (c *Client) ReadFile(ctx context.Context, path string) ([]byte, error) {
	attr, err := c.ResolvePath(ctx, path)
	if err != nil {
		return nil, err
	}
	data, err := c.nfs.ReadAll(ctx, attr.Handle)
	return data, c.wireError(err)
}

// WriteFile creates (or truncates) a file by path and writes data. It
// returns the file's attributes and, when the file was newly created,
// the creator credential text.
func (c *Client) WriteFile(ctx context.Context, path string, data []byte) (vfs.Attr, string, error) {
	dir, name, err := c.splitPath(ctx, path)
	if err != nil {
		return vfs.Attr{}, "", err
	}
	var cred string
	attr, err := c.nfs.Lookup(ctx, dir, name)
	if err == nil {
		sa := nfs.NewSAttr()
		sa.Size = 0
		if _, err := c.nfs.SetAttr(ctx, attr.Handle, sa); err != nil {
			return vfs.Attr{}, "", c.wireError(err)
		}
	} else if werr := c.wireError(err); errors.Is(werr, ErrNotExist) {
		attr, cred, err = c.CreateWithCredential(ctx, dir, name, 0o644)
		if err != nil {
			return vfs.Attr{}, "", err
		}
	} else {
		// A throttled or otherwise-failed lookup is not "missing": racing
		// into CREATE would turn a transient refusal into EEXIST.
		return vfs.Attr{}, "", werr
	}
	if err := c.nfs.WriteAll(ctx, attr.Handle, data); err != nil {
		return vfs.Attr{}, "", c.wireError(err)
	}
	// Durability barrier: against a write-behind server the WRITEs above
	// are unstable until committed (WriteFile promises written-on-return,
	// like the File Close barrier does).
	if _, _, err := c.nfs.Commit(ctx, attr.Handle); err != nil {
		return vfs.Attr{}, "", c.wireError(err)
	}
	return attr, cred, nil
}

// MkdirPath creates one directory by path, returning the credential.
func (c *Client) MkdirPath(ctx context.Context, path string) (vfs.Attr, string, error) {
	dir, name, err := c.splitPath(ctx, path)
	if err != nil {
		return vfs.Attr{}, "", err
	}
	return c.MkdirWithCredential(ctx, dir, name, 0o755)
}

// List returns the directory entries at path.
func (c *Client) List(ctx context.Context, path string) ([]nfs.DirEntry, error) {
	attr, err := c.ResolvePath(ctx, path)
	if err != nil {
		return nil, err
	}
	ents, err := c.nfs.ReadDirAll(ctx, attr.Handle)
	return ents, c.wireError(err)
}

// DialWithCredentials attaches and immediately submits the given
// credentials — the wallet pattern: a user keeps received credentials
// locally and presents them at every attach, as the paper's clients
// resubmit (or rely on server-side caching of) their chains.
// Clients needing both credentials and cache options can Dial with the
// options and call SubmitCredentials themselves.
func DialWithCredentials(ctx context.Context, addr string, identity *keynote.KeyPair, creds ...*keynote.Assertion) (*Client, error) {
	c, err := Dial(ctx, addr, identity)
	if err != nil {
		return nil, err
	}
	if len(creds) > 0 {
		if _, err := c.SubmitCredentials(ctx, creds...); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// WalkFunc is called by Walk for every visited entry with its
// slash-separated path from the mount root.
type WalkFunc func(path string, attr vfs.Attr) error

// Walk traverses the mounted tree depth-first in directory-listing
// order, calling fn for every entry the client's credentials allow it to
// see. Permission errors on individual subtrees are skipped (the walk
// visits what the caller may see, like ls -R under Unix permissions);
// other errors abort.
func (c *Client) Walk(ctx context.Context, fn WalkFunc) error {
	return c.walkDir(ctx, c.root, "", fn)
}

func (c *Client) walkDir(ctx context.Context, dir vfs.Handle, prefix string, fn WalkFunc) error {
	// One batched listing carries the names and (usually) the
	// attributes; entries whose attributes the server could not
	// piggyback fall back to individual cached lookups. Against servers
	// without READDIRPLUS the call itself degrades to READDIR plus
	// per-name LOOKUP.
	ents, err := c.attrs.ReadDirPlusAll(ctx, dir)
	if err != nil {
		if nfs.StatOf(err) == nfs.ErrAcces {
			return nil
		}
		return c.wireError(err)
	}
	for _, e := range ents {
		attr := e.Attr
		if !e.HasAttr {
			var err error
			attr, err = c.attrs.Lookup(ctx, dir, e.Name)
			if err != nil {
				if st := nfs.StatOf(err); st == nfs.ErrAcces || st == nfs.ErrNoEnt {
					continue
				}
				return c.wireError(err)
			}
		}
		path := prefix + "/" + e.Name
		if err := fn(path, attr); err != nil {
			return err
		}
		if attr.Type == vfs.TypeDir {
			if err := c.walkDir(ctx, attr.Handle, path, fn); err != nil {
				return err
			}
		}
	}
	return nil
}
