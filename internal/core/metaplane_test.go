package core

import (
	"context"
	"testing"

	"discfs/internal/keynote"
	"discfs/internal/nfs"
)

// TestReadDirPlusEntriesMasked: every attribute a batched READDIRPLUS
// page piggybacks is fetched through the caller's policy view at page
// time — an R-only peer sees the R-only masked mode on each entry, not
// the owner's; and the LOOKUPPLUS access word reports the compliance
// checker's grant, saving the client a probe RPC.
func TestReadDirPlusEntriesMasked(t *testing.T) {
	ctx := context.Background()
	srv, addr := testServer(t, ServerConfig{})

	bobKey := keynote.DeterministicKey("bob")
	srv.IssueCredential(bobKey.Principal, srv.backing.Root().Ino, "RWX", "")
	bob := dialAs(t, addr, "bob")
	if _, _, err := bob.WriteFile(ctx, "/a.txt", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bob.MkdirPath(ctx, "/docs"); err != nil {
		t.Fatal(err)
	}

	readerKey := keynote.DeterministicKey("reader")
	srv.IssueCredential(readerKey.Principal, srv.backing.Root().Ino, "R", "")
	reader := dialAs(t, addr, "reader")

	_, ents, err := reader.NFS().ReadDirPlusAll(ctx, reader.Root())
	if err != nil {
		t.Fatalf("ReadDirPlusAll as reader: %v", err)
	}
	if len(ents) < 2 {
		t.Fatalf("reader listed %d entries", len(ents))
	}
	for _, e := range ents {
		if !e.HasAttr {
			t.Errorf("entry %q: no piggybacked attributes", e.Name)
			continue
		}
		if e.Attr.Mode != 0o444 {
			t.Errorf("entry %q: mode %o for the R-only peer, want 444", e.Name, e.Attr.Mode)
		}
	}

	// The access word follows the grant: RWX for bob, R for the reader.
	r, err := bob.NFS().LookupPlus(ctx, bob.Root(), "a.txt")
	if err != nil {
		t.Fatalf("LookupPlus as bob: %v", err)
	}
	if want := nfs.AccessRead | nfs.AccessWrite | nfs.AccessExec; r.Access != want {
		t.Errorf("bob's access word %b, want %b", r.Access, want)
	}
}
