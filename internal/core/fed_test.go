package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"discfs/internal/ffs"
	"discfs/internal/keynote"
	"discfs/internal/nfs"
	"discfs/internal/vfs"
)

// fedCluster starts n independent servers sharing one administrator key
// (the shared trust anchor that lets delegation chains span servers)
// and pre-creates the /data shard subtree on each, as discfsd
// -fed-subtree would.
func fedCluster(t *testing.T, n int) ([]*Server, []string) {
	t.Helper()
	admin := keynote.DeterministicKey("fed-admin")
	srvs := make([]*Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 16384})
		if err != nil {
			t.Fatalf("ffs.New: %v", err)
		}
		if _, err := backing.Mkdir(backing.Root(), "data", 0o755); err != nil {
			t.Fatalf("mkdir /data on shard %d: %v", i, err)
		}
		srvs[i], addrs[i] = testServer(t, ServerConfig{ServerKey: admin, Backing: backing})
	}
	return srvs, addrs
}

// grantAll issues holder an RWX credential on every shard's root and
// returns the concatenated credential text — the chain a federated
// user submits once, to all shards.
func grantAll(t *testing.T, srvs []*Server, holder keynote.Principal) string {
	t.Helper()
	text := ""
	for i, srv := range srvs {
		cred, err := srv.IssueCredential(holder, srv.backing.Root().Ino, "RWX", fmt.Sprintf("shard %d root", i))
		if err != nil {
			t.Fatalf("IssueCredential shard %d: %v", i, err)
		}
		text += cred.Source + "\n\n"
	}
	return text
}

// fedDial connects a federated client: addrs[0] is the primary, the
// rest are shards, /data is the sharded subtree.
func fedDial(t *testing.T, addrs []string, seed string, opts ...ClientOption) *Client {
	t.Helper()
	opts = append([]ClientOption{WithServers(addrs[1:]...), WithShardSubtree("/data")}, opts...)
	return dialAsWith(t, addrs[0], seed, opts...)
}

// shardHolding reports which server's /data directory holds name,
// checked in the backing stores directly (ground truth, no client
// routing involved).
func shardHolding(t *testing.T, srvs []*Server, name string) int {
	t.Helper()
	found := -1
	for i, srv := range srvs {
		d, err := srv.backing.Lookup(srv.backing.Root(), "data")
		if err != nil {
			t.Fatalf("shard %d: lookup /data: %v", i, err)
		}
		if _, err := srv.backing.Lookup(d.Handle, name); err == nil {
			if found >= 0 {
				t.Fatalf("%s present on shards %d and %d", name, found, i)
			}
			found = i
		}
	}
	return found
}

// TestFedRoutingPlacesFilesOnOwningShard writes files into the sharded
// subtree through a federated client and verifies — against the
// backing stores directly — that each landed on exactly the shard the
// ring owns it to, and that reads route back to the same place.
func TestFedRoutingPlacesFilesOnOwningShard(t *testing.T) {
	ctx := context.Background()
	srvs, addrs := fedCluster(t, 3)
	chain := grantAll(t, srvs, keynote.DeterministicKey("bob").Principal)

	c := fedDial(t, addrs, "bob")
	if _, err := c.SubmitCredentialText(ctx, chain); err != nil {
		t.Fatalf("SubmitCredentialText: %v", err)
	}

	spread := make(map[int]int)
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("file-%02d.dat", i)
		body := []byte(fmt.Sprintf("payload %d", i))
		if _, _, err := c.WriteFile(ctx, "/data/"+name, body); err != nil {
			t.Fatalf("WriteFile %s: %v", name, err)
		}
		want := c.table.Owner(name)
		if got := shardHolding(t, srvs, name); got != want {
			t.Fatalf("%s landed on shard %d, ring owns it to %d", name, got, want)
		}
		spread[want]++
		back, err := c.ReadFile(ctx, "/data/"+name)
		if err != nil {
			t.Fatalf("ReadFile %s: %v", name, err)
		}
		if string(back) != string(body) {
			t.Fatalf("%s read back %q, want %q", name, back, body)
		}
	}
	if len(spread) < 2 {
		t.Fatalf("all 12 files on one shard (%v): sharding inert", spread)
	}

	// The merged listing shows every file exactly once.
	ents, err := c.List(ctx, "/data")
	if err != nil {
		t.Fatalf("List /data: %v", err)
	}
	if len(ents) != 12 {
		t.Fatalf("List /data returned %d entries, want 12", len(ents))
	}

	// Handle tags match the owning shard, so subsequent handle-based
	// ops route without lookups.
	for _, e := range ents {
		name := e.Name
		attr, err := c.ResolvePath(ctx, "/data/"+name)
		if err != nil {
			t.Fatalf("ResolvePath %s: %v", name, err)
		}
		if got, want := nfs.ShardOfIno(attr.Handle.Ino), c.table.Owner(name); got != want {
			t.Fatalf("%s handle tagged shard %d, want %d", name, got, want)
		}
	}
}

// TestFedCrossShardRename pins the EXDEV contract: renaming between two
// shards fails with ErrXDev, while a same-shard rename succeeds.
func TestFedCrossShardRename(t *testing.T) {
	ctx := context.Background()
	srvs, addrs := fedCluster(t, 3)
	chain := grantAll(t, srvs, keynote.DeterministicKey("bob").Principal)
	c := fedDial(t, addrs, "bob")
	if _, err := c.SubmitCredentialText(ctx, chain); err != nil {
		t.Fatalf("SubmitCredentialText: %v", err)
	}

	// Probe the ring for a cross-shard pair and a same-shard pair.
	var from, toCross, toSame string
	for i := 0; from == "" || toCross == "" || toSame == ""; i++ {
		name := fmt.Sprintf("probe-%03d", i)
		switch {
		case from == "":
			from = name
		case c.table.Owner(name) != c.table.Owner(from):
			if toCross == "" {
				toCross = name
			}
		case toSame == "" && name != from:
			toSame = name
		}
	}

	if _, _, err := c.WriteFile(ctx, "/data/"+from, []byte("x")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	err := c.Rename(ctx, "/data/"+from, "/data/"+toCross)
	if !errors.Is(err, ErrXDev) {
		t.Fatalf("cross-shard rename = %v, want ErrXDev", err)
	}
	if err := c.Rename(ctx, "/data/"+from, "/data/"+toSame); err != nil {
		t.Fatalf("same-shard rename: %v", err)
	}
	if got := shardHolding(t, srvs, toSame); got != c.table.Owner(from) {
		t.Fatalf("renamed file on shard %d, want %d", got, c.table.Owner(from))
	}

	// Defense in depth below the path API: handing one shard's handle
	// to another shard's NFS client is refused client-side before any
	// bytes hit the wire.
	attr, err := c.ResolvePath(ctx, "/data/"+toSame)
	if err != nil {
		t.Fatalf("ResolvePath: %v", err)
	}
	other := c.shards[(nfs.ShardOfIno(attr.Handle.Ino)+1)%3]
	if _, err := other.nfsc(ctx).GetAttr(ctx, attr.Handle); nfs.StatOf(err) != nfs.ErrXDev {
		t.Fatalf("foreign-shard handle = %v, want ErrXDev", err)
	}
}

// TestFedWalkRevokeMidWalk revokes a principal on one shard while that
// principal is mid-walk: the revoked shard's children vanish from the
// merged subtree (its listing denial drops it from the union) while
// the other shards' files keep streaming.
func TestFedWalkRevokeMidWalk(t *testing.T) {
	ctx := context.Background()
	srvs, addrs := fedCluster(t, 3)
	bob := keynote.DeterministicKey("bob")
	chain := grantAll(t, srvs, bob.Principal)
	c := fedDial(t, addrs, "bob")
	if _, err := c.SubmitCredentialText(ctx, chain); err != nil {
		t.Fatalf("SubmitCredentialText: %v", err)
	}

	perShard := make(map[int][]string)
	for i := 0; i < 15; i++ {
		name := fmt.Sprintf("walk-%02d", i)
		if _, _, err := c.WriteFile(ctx, "/data/"+name, []byte("w")); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		own := c.table.Owner(name)
		perShard[own] = append(perShard[own], name)
	}
	var victim int
	for sh, names := range perShard {
		if len(names) > 0 {
			victim = sh
			break
		}
	}

	// The admin revokes bob on the victim shard only (a single-server
	// admin client revokes exactly where it is attached).
	admin := dialAs(t, addrs[victim], "fed-admin")
	if _, err := admin.RevokeKey(ctx, bob.Principal); err != nil {
		t.Fatalf("RevokeKey: %v", err)
	}
	// Revocation also cut bob's secure channel to that shard; walks must
	// survive the dead connection, not just the policy denial.

	seen := make(map[string]bool)
	if err := c.Walk(ctx, func(path string, attr vfs.Attr) error {
		seen[path] = true
		return nil
	}); err != nil {
		t.Fatalf("Walk after revocation: %v", err)
	}
	for sh, names := range perShard {
		for _, n := range names {
			if sh == victim && seen["/data/"+n] {
				t.Fatalf("revoked shard %d still contributed %s to the walk", sh, n)
			}
			if sh != victim && !seen["/data/"+n] {
				t.Fatalf("healthy shard %d lost %s from the walk", sh, n)
			}
		}
	}

	// Direct access to the revoked shard's files is denied outright.
	if name := perShard[victim][0]; true {
		if _, err := c.ReadFile(ctx, "/data/"+name); err == nil {
			t.Fatalf("ReadFile %s succeeded after revocation on its shard", name)
		}
	}
}

// TestFedLegacyFallback runs a federation-configured client against a
// single stock server: shard 0's handle tag is the identity, so
// nothing federation-specific leaks onto the wire and every operation
// behaves exactly as a classic client.
func TestFedLegacyFallback(t *testing.T) {
	ctx := context.Background()
	srvs, addrs := fedCluster(t, 1)
	chain := grantAll(t, srvs, keynote.DeterministicKey("bob").Principal)

	c := dialAsWith(t, addrs[0], "bob", WithShardSubtree("/data"))
	if c.table == nil || c.table.NumShards() != 1 {
		t.Fatalf("expected a 1-shard routing table")
	}
	if _, err := c.SubmitCredentialText(ctx, chain); err != nil {
		t.Fatalf("SubmitCredentialText: %v", err)
	}
	if _, _, err := c.WriteFile(ctx, "/data/solo.dat", []byte("solo")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	attr, err := c.ResolvePath(ctx, "/data/solo.dat")
	if err != nil {
		t.Fatalf("ResolvePath: %v", err)
	}
	// No handle-prefix leak: the ino the client holds is exactly the
	// server's (top byte zero), and the server accepts it untagged.
	if attr.Handle.Ino>>nfs.ShardShift != 0 {
		t.Fatalf("single-server handle carries shard tag: ino %#x", attr.Handle.Ino)
	}
	if _, err := srvs[0].backing.GetAttr(vfs.Handle{Ino: attr.Handle.Ino, Gen: attr.Handle.Gen}); err != nil {
		t.Fatalf("server does not recognize the client's ino: %v", err)
	}
	got, err := c.ReadFile(ctx, "/data/solo.dat")
	if err != nil || string(got) != "solo" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	ents, err := c.List(ctx, "/data")
	if err != nil || len(ents) != 1 {
		t.Fatalf("List = %v, %v", ents, err)
	}
}

// TestFedRedial cuts a shard's main connection mid-session and checks
// the next operation transparently re-establishes it (counted in
// discfs_redials_total), with no credential resubmission — server
// sessions are keyed by principal, not connection.
func TestFedRedial(t *testing.T) {
	ctx := context.Background()
	srvs, addrs := fedCluster(t, 2)
	chain := grantAll(t, srvs, keynote.DeterministicKey("bob").Principal)
	c := fedDial(t, addrs, "bob")
	if _, err := c.SubmitCredentialText(ctx, chain); err != nil {
		t.Fatalf("SubmitCredentialText: %v", err)
	}
	if _, _, err := c.WriteFile(ctx, "/data/redial.dat", []byte("before")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	attr, err := c.ResolvePath(ctx, "/data/redial.dat")
	if err != nil {
		t.Fatalf("ResolvePath: %v", err)
	}
	sh := c.shardOf(attr.Handle)

	before := RedialsTotal()
	sh.link.Load().rpc.Close() // sever the shard's main link under it
	got, err := c.ReadFile(ctx, "/data/redial.dat")
	if err != nil || string(got) != "before" {
		t.Fatalf("ReadFile across redial = %q, %v", got, err)
	}
	if RedialsTotal() == before {
		t.Fatalf("redial not counted: RedialsTotal still %d", before)
	}
	// And writes — which may ride pool connections — still work too.
	if _, _, err := c.WriteFile(ctx, "/data/redial.dat", []byte("after")); err != nil {
		t.Fatalf("WriteFile after redial: %v", err)
	}
}

// TestFedDelegationSpansServers is the paper's sharing flow stretched
// across the federation: bob delegates a file he owns on some shard to
// alice; alice presents the full chain (admin→bob on every shard plus
// bob→alice) to her federated client and reads the file, wherever it
// lives — no server-to-server coordination, just the self-certifying
// chain evaluated locally by the owning shard.
func TestFedDelegationSpansServers(t *testing.T) {
	ctx := context.Background()
	srvs, addrs := fedCluster(t, 3)
	bob := keynote.DeterministicKey("bob")
	alice := keynote.DeterministicKey("alice")
	bobChain := grantAll(t, srvs, bob.Principal)

	bc := fedDial(t, addrs, "bob")
	if _, err := bc.SubmitCredentialText(ctx, bobChain); err != nil {
		t.Fatalf("bob SubmitCredentialText: %v", err)
	}
	attr, _, err := bc.WriteFile(ctx, "/data/shared.dat", []byte("for alice"))
	if err != nil {
		t.Fatalf("bob WriteFile: %v", err)
	}
	// Delegating from the federated (tagged) file ino must strip the
	// shard tag: credentials speak the owning server's inode numbers.
	tagged, err := bc.Delegate(ctx, alice.Principal, attr.Handle.Ino, "R", "tag check")
	if err != nil {
		t.Fatalf("Delegate(tagged ino): %v", err)
	}
	serverIno := nfs.UntagIno(attr.Handle.Ino)
	if serverIno == attr.Handle.Ino {
		t.Fatalf("test needs a tagged handle; got untagged ino %#x", attr.Handle.Ino)
	}
	if want := fmt.Sprintf("%q", fmt.Sprint(serverIno)); !strings.Contains(tagged.Source, want) {
		t.Fatalf("delegation conditions lack the untagged ino %s:\n%s", want, tagged.Source)
	}
	if stray := fmt.Sprintf("%q", fmt.Sprint(attr.Handle.Ino)); strings.Contains(tagged.Source, stray) {
		t.Fatalf("delegation conditions leak the tagged ino %s:\n%s", stray, tagged.Source)
	}
	// As in the paper's Figure 1, grants on a directory carry the search
	// bit so files beneath stay reachable: bob shares read+lookup on the
	// tree (the root ino is the same on every freshly provisioned
	// shard, so one credential covers the path on each server).
	cred, err := bc.Delegate(ctx, alice.Principal, srvs[0].backing.Root().Ino, "RX", "bob shares with alice")
	if err != nil {
		t.Fatalf("Delegate: %v", err)
	}

	ac := fedDial(t, addrs, "alice")
	if _, err := ac.SubmitCredentialText(ctx, bobChain+cred.Source+"\n"); err != nil {
		t.Fatalf("alice SubmitCredentialText: %v", err)
	}
	got, err := ac.ReadFile(ctx, "/data/shared.dat")
	if err != nil || string(got) != "for alice" {
		t.Fatalf("alice ReadFile = %q, %v", got, err)
	}
	// Read-only: the chain ends in "R".
	if _, _, err := ac.WriteFile(ctx, "/data/shared.dat", []byte("overwrite")); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("alice write = %v, want ErrAccessDenied", err)
	}
}

// TestFedGrafts exercises the static mount-style bindings: a path
// grafted to shard 1 resolves to that shard's root, files beneath it
// live there, and the graft surfaces in walks.
func TestFedGrafts(t *testing.T) {
	ctx := context.Background()
	srvs, addrs := fedCluster(t, 2)
	chain := grantAll(t, srvs, keynote.DeterministicKey("bob").Principal)

	c := dialAsWith(t, addrs[0], "bob", WithServers(addrs[1]), WithGraft("/archive", 1))
	if _, err := c.SubmitCredentialText(ctx, chain); err != nil {
		t.Fatalf("SubmitCredentialText: %v", err)
	}
	if _, _, err := c.WriteFile(ctx, "/archive/old.dat", []byte("kept")); err != nil {
		t.Fatalf("WriteFile under graft: %v", err)
	}
	// Ground truth: the file exists at shard 1's root, not on shard 0.
	if _, err := srvs[1].backing.Lookup(srvs[1].backing.Root(), "old.dat"); err != nil {
		t.Fatalf("grafted file missing on shard 1: %v", err)
	}
	if _, err := srvs[0].backing.Lookup(srvs[0].backing.Root(), "old.dat"); err == nil {
		t.Fatalf("grafted file leaked onto shard 0")
	}
	var paths []string
	if err := c.Walk(ctx, func(p string, _ vfs.Attr) error {
		paths = append(paths, p)
		return nil
	}); err != nil {
		t.Fatalf("Walk: %v", err)
	}
	found := false
	for _, p := range paths {
		if p == "/archive/old.dat" {
			found = true
		}
	}
	if !found {
		t.Fatalf("walk missed the grafted file: %v", paths)
	}
}
