package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"discfs/internal/cfs"
	"discfs/internal/ffs"
	"discfs/internal/keynote"
	"discfs/internal/vfs"
)

// gatedFS blocks the first Write until released, so a test can hold an
// RPC in flight across a shutdown.
type gatedFS struct {
	vfs.FS
	entered chan struct{} // closed when the gated write is in the handler
	release chan struct{}
	once    sync.Once
}

func (g *gatedFS) Write(h vfs.Handle, off uint64, data []byte) (vfs.Attr, error) {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	return g.FS.Write(h, off, data)
}

// TestDrainCompletesInFlightWrite holds a WRITE inside the backing
// store while Shutdown runs: the drain must fence new connections yet
// let the parked call finish and deliver its reply, all inside the
// deadline.
func TestDrainCompletesInFlightWrite(t *testing.T) {
	ctx := context.Background()
	backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	gated := &gatedFS{FS: backing, entered: make(chan struct{}), release: make(chan struct{})}
	srv, addr := testServer(t, ServerConfig{Backing: gated})
	c := dialAs(t, addr, "test-admin")

	attr, _, err := c.CreateWithCredential(ctx, c.Root(), "slow", 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	writeErr := make(chan error, 1)
	go func() {
		_, err := c.NFS().Write(ctx, attr.Handle, 0, []byte("survives the drain"))
		writeErr <- err
	}()
	<-gated.entered

	shutdownErr := make(chan error, 1)
	start := time.Now()
	go func() {
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(sctx)
	}()
	// The fence: once draining, the listener is gone and new sessions
	// must be refused while the parked WRITE is still in flight.
	waitFence := time.Now().Add(2 * time.Second)
	for !srv.Draining() && time.Now().Before(waitFence) {
		time.Sleep(time.Millisecond)
	}
	if !srv.Draining() {
		t.Fatal("server never entered draining state")
	}
	if _, err := Dial(ctx, addr, keynote.DeterministicKey("latecomer")); err == nil {
		t.Error("new session admitted during drain")
	}

	close(gated.release)
	if err := <-writeErr; err != nil {
		t.Errorf("in-flight WRITE during drain = %v, want success", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("Shutdown = %v, want clean drain", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("drain took %v, beyond the 5s deadline", elapsed)
	}
}

// TestDrainFlushesAckedUnstableWrites: against a write-behind server a
// WRITE is acknowledged before it reaches the backing store; COMMIT is
// the client's barrier. Shutdown without any COMMIT must still flush
// the gathered data — an acked write lost in a graceful drain would be
// a durability lie.
func TestDrainFlushesAckedUnstableWrites(t *testing.T) {
	ctx := context.Background()
	backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ne, err := cfs.New(backing, "", false)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := testServer(t, ServerConfig{Backing: ne, WriteBehind: true})
	c := dialAs(t, addr, "test-admin")

	payload := []byte(strings.Repeat("unstable-but-acked ", 64))
	attr, _, err := c.CreateWithCredential(ctx, c.Root(), "pending", 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := c.NFS().WriteAll(ctx, attr.Handle, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	// No COMMIT: drain now, with the data still in the gather queue.
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	a, err := ne.Lookup(ne.Root(), "pending")
	if err != nil {
		t.Fatalf("backing lookup after drain: %v", err)
	}
	got, _, err := ne.Read(a.Handle, 0, uint32(len(payload)+16))
	if err != nil {
		t.Fatalf("backing read after drain: %v", err)
	}
	if string(got) != string(payload) {
		t.Errorf("backing holds %d bytes, want the %d-byte acked write intact", len(got), len(payload))
	}
}

// TestThrottledOverRPC drives a rate-limited principal past its budget
// and asserts the refusal crosses the wire as ErrThrottled (the typed
// error the client taxonomy promises), with the server counting it.
func TestThrottledOverRPC(t *testing.T) {
	ctx := context.Background()
	srv, addr := testServer(t, ServerConfig{
		LimitDefault: Limits{RPS: 20, Burst: 20},
		LimitMaxWait: -1, // reject instead of shaping: the test wants the error
	})
	c := dialAs(t, addr, "test-admin")

	throttled := 0
	for i := 0; i < 200 && throttled == 0; i++ {
		_, err := c.ResolvePath(ctx, "/")
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrThrottled) {
			t.Fatalf("over-budget resolve = %v, want ErrThrottled", err)
		}
		throttled++
	}
	if throttled == 0 {
		t.Fatal("200 rapid calls against a 20 rps budget: none throttled")
	}
	rate, _ := srv.Throttled()
	if rate == 0 {
		t.Error("server Throttled() rate count is zero")
	}
	var b strings.Builder
	if err := srv.Metrics().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "discfs_throttled_rate_total") {
		t.Error("registry does not expose discfs_throttled_rate_total")
	}
}
