package core

import (
	"discfs/internal/keynote"
	"discfs/internal/nfs"
	"discfs/internal/sunrpc"
	"discfs/internal/vfs"
	"discfs/internal/xdr"
)

// The DisCFS extension RPC program. The paper (§5): "We wrote a utility
// which allows a user to submit credential assertions to the DisCFS
// daemon over RPC" and "we had to add our own procedures that upon
// successful creation of a file/directory return a credential with full
// access to the creator". This program is those procedures, plus
// administrative revocation (§4.1) and introspection.
const (
	// ExtProg is the extension program number ("DisCFS" has no assigned
	// number; this one lives in the user-defined range).
	ExtProg = 395647
	// ExtVers is version 1.
	ExtVers = 1
)

// Extension procedures.
const (
	ExtNull       = 0
	ExtSubmitCred = 1  // submit credential assertions to the session
	ExtCreateCred = 2  // CREATE returning the creator's credential
	ExtMkdirCred  = 3  // MKDIR returning the creator's credential
	ExtWhoAmI     = 4  // echo the authenticated principal
	ExtRevokeKey  = 5  // admin: revoke a principal
	ExtRevokeCred = 6  // admin: revoke one credential by signature
	ExtListCreds  = 7  // admin: list session credentials
	ExtStats      = 8  // policy-engine statistics
	ExtRevPush    = 9  // peer server: deliver revocation feed entries
	ExtRevPull    = 10 // peer server: fetch the revocation log (anti-entropy)
)

// Extension status codes.
const (
	extOK         = 0
	extErr        = 1
	extNotAdmin   = 2
	extBadRequest = 3
)

// maxCredText bounds submitted credential text.
const maxCredText = 1 << 18

// registerExt installs the extension program.
func (s *Server) registerExt(rpc *sunrpc.Server) {
	rpc.Register(ExtProg, ExtVers, s.dispatchExt)
}

func (s *Server) dispatchExt(ctx *sunrpc.Context, proc uint32, args *xdr.Decoder, res *xdr.Encoder) (sunrpc.AcceptStat, error) {
	peer := keynote.Principal(ctx.Peer)
	if ctx.Peer == "" {
		peer = anonymousPrincipal
	}
	switch proc {
	case ExtNull:
		return sunrpc.Success, nil

	case ExtSubmitCred:
		text := args.String(maxCredText)
		if args.Err() != nil {
			return sunrpc.GarbageArgs, nil
		}
		added, err := s.session.AddCredentialText(text)
		if err != nil {
			res.Uint32(extErr)
			res.Uint32(uint32(len(added)))
			res.String(err.Error())
			return sunrpc.Success, nil
		}
		res.Uint32(extOK)
		res.Uint32(uint32(len(added)))
		res.String("")
		return sunrpc.Success, nil

	case ExtCreateCred, ExtMkdirCred:
		raw := args.OpaqueFixed(nfs.FHSize)
		name := args.String(nfs.MaxName + 1)
		sa := nfs.DecodeSAttr(args)
		if args.Err() != nil {
			return sunrpc.GarbageArgs, nil
		}
		dir, err := nfs.DecodeFH(raw)
		if err != nil {
			res.Uint32(uint32(nfs.ErrStale))
			return sunrpc.Success, nil
		}
		mode := sa.Mode
		if mode == 0xffffffff {
			if proc == ExtMkdirCred {
				mode = 0o755
			} else {
				mode = 0o644
			}
		}
		vw := &view{s: s, peer: peer}
		var attr vfs.Attr
		var cred *keynote.Assertion
		if proc == ExtCreateCred {
			attr, cred, err = vw.createWithCred(dir, name, mode&0o7777)
		} else {
			attr, cred, err = vw.mkdirWithCred(dir, name, mode&0o7777)
		}
		if err != nil {
			res.Uint32(uint32(nfs.MapError(err)))
			return sunrpc.Success, nil
		}
		res.Uint32(uint32(nfs.OK))
		fh := nfs.EncodeFH(attr.Handle)
		res.OpaqueFixed(fh[:])
		fa := nfs.FAttrFromVFS(attr, nfs.MaxData)
		fa.Encode(res)
		res.String(cred.Source)
		return sunrpc.Success, nil

	case ExtWhoAmI:
		res.String(string(peer))
		return sunrpc.Success, nil

	case ExtRevokeKey:
		target := args.String(4096)
		if args.Err() != nil {
			return sunrpc.GarbageArgs, nil
		}
		if !s.admins[peer] {
			res.Uint32(extNotAdmin)
			res.Uint32(0)
			return sunrpc.Success, nil
		}
		removed := s.session.RevokeKey(keynote.Principal(target))
		s.cache.Purge()
		// Cut the revoked principal's live sessions on this server now,
		// and hand the entry to the feed so every peer converges too.
		s.fencePeerConns(keynote.Principal(target))
		s.feed.noteLocal()
		res.Uint32(extOK)
		res.Uint32(uint32(removed))
		return sunrpc.Success, nil

	case ExtRevokeCred:
		sig := args.String(maxCredText)
		if args.Err() != nil {
			return sunrpc.GarbageArgs, nil
		}
		if !s.admins[peer] {
			res.Uint32(extNotAdmin)
			res.Bool(false)
			return sunrpc.Success, nil
		}
		found := s.session.RevokeCredential(sig)
		s.cache.Purge()
		s.feed.noteLocal()
		res.Uint32(extOK)
		res.Bool(found)
		return sunrpc.Success, nil

	case ExtListCreds:
		if !s.admins[peer] {
			res.Uint32(extNotAdmin)
			res.Uint32(0)
			return sunrpc.Success, nil
		}
		creds := s.session.Credentials()
		res.Uint32(extOK)
		res.Uint32(uint32(len(creds)))
		for _, c := range creds {
			res.String(c.Source)
		}
		return sunrpc.Success, nil

	case ExtRevPush:
		// A peer server delivering feed entries. Peers authenticate with
		// their server key, which must be an admin here (federations
		// share the admin key, or cross-register keys via -admins).
		_ = args.Uint64() // sender's feed epoch (observability)
		entries, ok := decodeFeedEntries(args)
		if args.Err() != nil || !ok {
			return sunrpc.GarbageArgs, nil
		}
		if !s.admins[peer] {
			res.Uint32(extNotAdmin)
			res.Uint32(0)
			return sunrpc.Success, nil
		}
		applied := s.feed.absorb(entries)
		res.Uint32(extOK)
		res.Uint32(uint32(applied))
		return sunrpc.Success, nil

	case ExtRevPull:
		// A peer server running anti-entropy on (re)connect.
		since := args.Uint64()
		if args.Err() != nil {
			return sunrpc.GarbageArgs, nil
		}
		if !s.admins[peer] {
			res.Uint32(extNotAdmin)
			res.Uint64(0)
			res.Uint32(0)
			return sunrpc.Success, nil
		}
		epoch, entries := s.feed.snapshotLog(since)
		res.Uint32(extOK)
		res.Uint64(epoch)
		encodeFeedEntries(res, entries)
		return sunrpc.Success, nil

	case ExtStats:
		st := s.Stats()
		res.Uint32(extOK)
		res.Uint64(st.Queries)
		res.Uint64(st.CacheHits)
		res.Uint64(st.CacheMisses)
		res.Uint32(uint32(st.Credentials))
		res.Uint64(st.Decisions)
		res.Uint64(st.Denials)
		res.Uint64(uint64(st.WriteQueueDepth))
		res.Uint64(st.WritesGathered)
		res.Uint64(st.BackendWrites)
		res.Uint64(st.Commits)
		return sunrpc.Success, nil
	}
	return sunrpc.ProcUnavail, nil
}
