package core

import (
	"discfs/internal/keynote"
	"discfs/internal/nfs"
	"discfs/internal/vfs"
)

// view is the per-principal filesystem the NFS layer serves: every
// operation consults the KeyNote session before reaching the backing
// store. It implements vfs.FS.
//
// Permission model (paper §5): the compliance value for (peer, handle)
// translates to rwx bits. Reads need R, mutations need W, directory
// search (lookup) needs X — the standard Unix interpretation, enforced
// by credentials instead of file ownership.
type view struct {
	s    *Server
	peer keynote.Principal
}

var _ vfs.FS = (*view)(nil)

// maskAttr rewrites the mode to show exactly the permissions the peer
// holds, as the paper's prototype does: an attached directory shows 000
// until credentials arrive, then "the permissions … are changed
// accordingly". Ownership is the attach-time identity and has no local
// significance; we surface it unchanged from the backing store.
func (v *view) maskAttr(a vfs.Attr) vfs.Attr {
	perm, _ := v.s.decide(v.peer, a.Handle)
	p := uint32(perm)
	a.Mode = p<<6 | p<<3 | p
	return a
}

// Root implements vfs.FS. The root handle is always visible (the attach
// succeeds; access control happens per-operation).
func (v *view) Root() vfs.Handle { return v.s.backing.Root() }

// GetAttr implements vfs.FS: allowed for everyone, but the mode reflects
// granted permissions (000 with no credentials).
func (v *view) GetAttr(h vfs.Handle) (vfs.Attr, error) {
	a, err := v.s.backing.GetAttr(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	return v.maskAttr(a), nil
}

// SetAttr implements vfs.FS; requires W. (The paper notes setattr is
// "superfluous" for permission bits — those live in credentials — but
// truncation and timestamps still flow through it.)
func (v *view) SetAttr(h vfs.Handle, sa vfs.SetAttr) (vfs.Attr, error) {
	if err := v.s.check(v.peer, h, PermW, "setattr", ""); err != nil {
		return vfs.Attr{}, err
	}
	// Mode changes are meaningless under credential control; strip them
	// rather than confuse the backing store's notion of permissions.
	sa.Mode = nil
	a, err := v.s.backing.SetAttr(h, sa)
	if err != nil {
		return vfs.Attr{}, err
	}
	return v.maskAttr(a), nil
}

// Lookup implements vfs.FS; requires X (search) on the directory.
func (v *view) Lookup(dir vfs.Handle, name string) (vfs.Attr, error) {
	if err := v.s.check(v.peer, dir, PermX, "lookup", name); err != nil {
		return vfs.Attr{}, err
	}
	a, err := v.s.backing.Lookup(dir, name)
	if err != nil {
		return vfs.Attr{}, err
	}
	if name != "." && name != ".." {
		v.s.noteParent(a.Handle, dir)
	}
	return v.maskAttr(a), nil
}

// Read implements vfs.FS; requires R.
func (v *view) Read(h vfs.Handle, off uint64, count uint32) ([]byte, bool, error) {
	if err := v.s.check(v.peer, h, PermR, "read", ""); err != nil {
		return nil, false, err
	}
	return v.s.backing.Read(h, off, count)
}

// ReadInto implements vfs.ReaderInto; requires R. The policy check runs
// here and the read lands directly in the caller's buffer (the NFS
// reply record), keeping the zero-copy path through the credential
// filter.
func (v *view) ReadInto(h vfs.Handle, off uint64, dst []byte) (int, bool, error) {
	if err := v.s.check(v.peer, h, PermR, "read", ""); err != nil {
		return 0, false, err
	}
	return vfs.ReadFSInto(v.s.backing, h, off, dst)
}

// Write implements vfs.FS; requires W.
func (v *view) Write(h vfs.Handle, off uint64, data []byte) (vfs.Attr, error) {
	if err := v.s.check(v.peer, h, PermW, "write", ""); err != nil {
		return vfs.Attr{}, err
	}
	a, err := v.s.backing.Write(h, off, data)
	if err != nil {
		return vfs.Attr{}, err
	}
	return v.maskAttr(a), nil
}

// Create implements vfs.FS; requires W on the directory. The server
// issues the creator a credential for the new file (the paper's added
// procedure); callers using the extension program receive its text.
func (v *view) Create(dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	a, _, err := v.createWithCred(dir, name, mode)
	return a, err
}

func (v *view) createWithCred(dir vfs.Handle, name string, mode uint32) (vfs.Attr, *keynote.Assertion, error) {
	if err := v.s.check(v.peer, dir, PermW, "create", name); err != nil {
		return vfs.Attr{}, nil, err
	}
	a, err := v.s.backing.Create(dir, name, mode)
	if err != nil {
		return vfs.Attr{}, nil, err
	}
	v.s.noteParent(a.Handle, dir)
	cred, err := v.s.IssueCredential(v.peer, a.Handle.Ino, "RWX", "creator of "+name)
	if err != nil {
		return vfs.Attr{}, nil, err
	}
	return v.maskAttr(a), cred, nil
}

// Remove implements vfs.FS; requires W on the directory.
func (v *view) Remove(dir vfs.Handle, name string) error {
	if err := v.s.check(v.peer, dir, PermW, "remove", name); err != nil {
		return err
	}
	if a, err := v.s.backing.Lookup(dir, name); err == nil {
		defer v.s.dropParent(a.Handle)
	}
	return v.s.backing.Remove(dir, name)
}

// Rename implements vfs.FS; requires W on both directories.
func (v *view) Rename(fromDir vfs.Handle, fromName string, toDir vfs.Handle, toName string) error {
	if err := v.s.check(v.peer, fromDir, PermW, "rename-from", fromName); err != nil {
		return err
	}
	if fromDir != toDir {
		if err := v.s.check(v.peer, toDir, PermW, "rename-to", toName); err != nil {
			return err
		}
	}
	if err := v.s.backing.Rename(fromDir, fromName, toDir, toName); err != nil {
		return err
	}
	// The moved object's path — and, for a directory, every descendant
	// path — changed: invalidate cached paths and the decisions computed
	// from them (a subtree-scoped grant must not survive the move).
	v.s.invalidatePaths()
	if a, err := v.s.backing.Lookup(toDir, toName); err == nil {
		v.s.noteParent(a.Handle, toDir)
	}
	return nil
}

// Mkdir implements vfs.FS; requires W on the parent; issues a credential
// like Create.
func (v *view) Mkdir(dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	a, _, err := v.mkdirWithCred(dir, name, mode)
	return a, err
}

func (v *view) mkdirWithCred(dir vfs.Handle, name string, mode uint32) (vfs.Attr, *keynote.Assertion, error) {
	if err := v.s.check(v.peer, dir, PermW, "mkdir", name); err != nil {
		return vfs.Attr{}, nil, err
	}
	a, err := v.s.backing.Mkdir(dir, name, mode)
	if err != nil {
		return vfs.Attr{}, nil, err
	}
	v.s.noteParent(a.Handle, dir)
	cred, err := v.s.IssueCredential(v.peer, a.Handle.Ino, "RWX", "creator of "+name+"/")
	if err != nil {
		return vfs.Attr{}, nil, err
	}
	return v.maskAttr(a), cred, nil
}

// Rmdir implements vfs.FS; requires W on the parent.
func (v *view) Rmdir(dir vfs.Handle, name string) error {
	if err := v.s.check(v.peer, dir, PermW, "rmdir", name); err != nil {
		return err
	}
	if a, err := v.s.backing.Lookup(dir, name); err == nil {
		defer v.s.dropParent(a.Handle)
		// A directory's disappearance invalidates any path cached
		// through it (defense in depth: the backing store requires the
		// directory to be empty, so normally nothing runs through it).
		defer v.s.invalidatePaths()
	}
	return v.s.backing.Rmdir(dir, name)
}

// ReadDir implements vfs.FS; requires R on the directory.
func (v *view) ReadDir(dir vfs.Handle) ([]vfs.DirEntry, error) {
	if err := v.s.check(v.peer, dir, PermR, "readdir", ""); err != nil {
		return nil, err
	}
	ents, err := v.s.backing.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		v.s.noteParent(e.Handle, dir)
	}
	return ents, nil
}

// Symlink implements vfs.FS; requires W on the directory.
func (v *view) Symlink(dir vfs.Handle, name, target string, mode uint32) (vfs.Attr, error) {
	if err := v.s.check(v.peer, dir, PermW, "symlink", name); err != nil {
		return vfs.Attr{}, err
	}
	a, err := v.s.backing.Symlink(dir, name, target, mode)
	if err != nil {
		return vfs.Attr{}, err
	}
	v.s.noteParent(a.Handle, dir)
	if _, err := v.s.IssueCredential(v.peer, a.Handle.Ino, "RWX", "creator of symlink "+name); err != nil {
		return vfs.Attr{}, err
	}
	return v.maskAttr(a), nil
}

// Readlink implements vfs.FS; requires R on the link.
func (v *view) Readlink(h vfs.Handle) (string, error) {
	if err := v.s.check(v.peer, h, PermR, "readlink", ""); err != nil {
		return "", err
	}
	return v.s.backing.Readlink(h)
}

// Link implements vfs.FS; requires W on the directory and W on the
// target (creating a new name for an object is a modification of both).
func (v *view) Link(dir vfs.Handle, name string, target vfs.Handle) (vfs.Attr, error) {
	if err := v.s.check(v.peer, dir, PermW, "link", name); err != nil {
		return vfs.Attr{}, err
	}
	if err := v.s.check(v.peer, target, PermW, "link-target", name); err != nil {
		return vfs.Attr{}, err
	}
	a, err := v.s.backing.Link(dir, name, target)
	if err != nil {
		return vfs.Attr{}, err
	}
	return v.maskAttr(a), nil
}

// StatFS implements vfs.FS; capacity information is not confidential.
func (v *view) StatFS() (vfs.StatFS, error) { return v.s.backing.StatFS() }

// Access implements the nfs.AccessChecker capability: it reports the
// rwx bits the compliance checker grants this peer on h, without
// performing an operation. The NFS layer uses it to re-run the policy
// gate when a READDIRPLUS walk resumes from a cursor (revocation
// between pages must stop the walk) and to fill LOOKUPPLUS's access
// word so clients skip a probe round trip.
func (v *view) Access(h vfs.Handle) (uint32, error) {
	perm, _ := v.s.decide(v.peer, h)
	return uint32(perm), nil
}

// Commit implements the nfs.Committer capability: the durability
// barrier for unstable writes requires W, like the writes it commits.
// Against a server without write-behind it degrades to a sync barrier
// with the stable zero verifier.
func (v *view) Commit(h vfs.Handle) (uint64, vfs.Attr, error) {
	if err := v.s.check(v.peer, h, PermW, "commit", ""); err != nil {
		return 0, vfs.Attr{}, err
	}
	ver, a, err := nfs.CommitFS(v.s.backing, h)
	if err != nil {
		return ver, vfs.Attr{}, err
	}
	return ver, v.maskAttr(a), nil
}
