package core

// Fault-injection tests for the data cache's transport behavior: a TCP
// proxy between client and server injects delays, short forwards and
// mid-call connection drops, and the tests assert that typed errors
// (ErrStale, context cancellation, transport failures) surface through
// the cache's deferred-write machinery instead of deadlocking a flush.

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"discfs/internal/keynote"
)

// faultProxy forwards TCP bytes between clients and target, optionally
// trickling them in small delayed chunks, stalling entirely, or cutting
// every connection.
type faultProxy struct {
	ln     net.Listener
	target string

	chunk   int           // forward at most chunk bytes at a time (0: unlimited)
	delay   time.Duration // sleep between chunks
	stalled atomic.Bool   // stop forwarding (connections stay up)
	cut     atomic.Bool   // close all connections, refuse new ones

	mu    sync.Mutex
	conns []net.Conn
}

func newFaultProxy(t *testing.T, target string, chunk int, delay time.Duration) *faultProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := &faultProxy{ln: ln, target: target, chunk: chunk, delay: delay}
	go p.accept()
	t.Cleanup(func() { p.Cut(); ln.Close() })
	return p
}

func (p *faultProxy) Addr() string { return p.ln.Addr().String() }

// Stall freezes all forwarding without closing connections (a wedged
// network); RPCs block until canceled.
func (p *faultProxy) Stall() { p.stalled.Store(true) }

// Cut severs every proxied connection mid-call.
func (p *faultProxy) Cut() {
	p.cut.Store(true)
	p.mu.Lock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
	p.mu.Unlock()
}

func (p *faultProxy) accept() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.cut.Load() {
			conn.Close()
			continue
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, conn, up)
		p.mu.Unlock()
		go p.pipe(conn, up)
		go p.pipe(up, conn)
	}
}

// pipe forwards src→dst honoring chunk/delay/stall faults.
func (p *faultProxy) pipe(src, dst net.Conn) {
	defer dst.Close()
	defer src.Close()
	buf := make([]byte, 32<<10)
	for {
		n := len(buf)
		if p.chunk > 0 && n > p.chunk {
			n = p.chunk
		}
		m, err := src.Read(buf[:n])
		if m > 0 {
			for p.stalled.Load() && !p.cut.Load() {
				time.Sleep(time.Millisecond)
			}
			if p.cut.Load() {
				return
			}
			if p.delay > 0 {
				time.Sleep(p.delay)
			}
			if _, werr := dst.Write(buf[:m]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

func faultServer(t *testing.T) string {
	t.Helper()
	_, addr := testServer(t, ServerConfig{})
	return addr
}

// TestCacheSurvivesSlowShortTransport runs a full cached write/read
// cycle through a proxy that forwards in 7-byte chunks with delays —
// constant short reads/writes at the transport — and expects plain
// correctness.
func TestCacheSurvivesSlowShortTransport(t *testing.T) {
	proxy := newFaultProxy(t, faultServer(t), 7, 200*time.Microsecond)
	ctx := context.Background()
	c, err := Dial(ctx, proxy.Addr(), keynote.DeterministicKey("test-admin"))
	if err != nil {
		t.Fatalf("dial through trickle proxy: %v", err)
	}
	defer c.Close()

	payload := make([]byte, 3*8192+123)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	f, err := c.Open(ctx, "/trickle.bin", os.O_CREATE|os.O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync through trickle proxy: %v", err)
	}
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("byte %d corrupted through trickle transport", i)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCancellationMidFlushDoesNotDeadlock stalls the transport with a
// flush in flight, cancels the File's context, and requires Sync and
// Close to return (with the cancellation error) rather than hang.
func TestCancellationMidFlushDoesNotDeadlock(t *testing.T) {
	proxy := newFaultProxy(t, faultServer(t), 0, 0)
	bg := context.Background()
	c, err := Dial(bg, proxy.Addr(), keynote.DeterministicKey("test-admin"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(bg)
	f, err := c.Open(ctx, "/stall.bin", os.O_CREATE|os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	// Freeze the wire, then buffer a write: its background flush wedges
	// in the stalled transport.
	proxy.Stall()
	if _, err := f.Write(make([]byte, 2*8192)); err != nil {
		t.Fatalf("buffered write: %v", err)
	}
	time.Sleep(20 * time.Millisecond) // let a flush enter the stalled wire
	cancel()

	done := make(chan error, 1)
	go func() { done <- f.Close() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Close returned nil; want the canceled flush's error")
		}
		if !errors.Is(err, context.Canceled) {
			t.Logf("Close error = %v (transport variant, still not a deadlock)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked on a canceled mid-flush")
	}
}

// TestMidCallCutFailsFlushNotHang severs every connection mid-call and
// requires the deferred error to surface at the barrier quickly.
func TestMidCallCutFailsFlushNotHang(t *testing.T) {
	proxy := newFaultProxy(t, faultServer(t), 0, 0)
	ctx := context.Background()
	c, err := Dial(ctx, proxy.Addr(), keynote.DeterministicKey("test-admin"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	f, err := c.Open(ctx, "/cut.bin", os.O_CREATE|os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("pre-cut sync: %v", err)
	}
	proxy.Cut()
	if _, err := f.Write(make([]byte, 4*8192)); err != nil {
		// Backpressure may surface the transport failure here already —
		// acceptable; the barrier must still not hang.
		t.Logf("write after cut: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Close() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Close returned nil after its flushes lost the transport")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung after mid-call connection cut")
	}
}

// TestStaleHandleSurfacesThroughCache removes a file behind an open
// cached File and requires the deferred flush error to match ErrStale
// at the Sync barrier, and a re-open of the dead handle to fail with
// ErrStale from the close-to-open revalidation.
func TestStaleHandleSurfacesThroughCache(t *testing.T) {
	_, addr := testServer(t, ServerConfig{})
	c := dialAs(t, addr, "test-admin")
	ctx := context.Background()

	f, err := c.Open(ctx, "/stale.bin", os.O_CREATE|os.O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	root, err := c.ResolvePath(ctx, "/")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.NFS().Remove(ctx, root.Handle, "stale.bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("after-remove")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrStale) {
		t.Fatalf("Sync after remove = %v, want ErrStale", err)
	}
	if _, err := c.OpenHandle(ctx, f.Handle(), os.O_RDONLY); !errors.Is(err, ErrStale) {
		t.Fatalf("OpenHandle on removed file = %v, want ErrStale", err)
	}
}
