package core

// The client-side data cache: a per-file block cache with sequential
// readahead and write-behind, the role the kernel page cache plays for
// real NFS clients. Without it every 8 KiB of file I/O costs one
// synchronous RPC round-trip — the dominant term in the paper's Figures
// 7-11 — so the cache is where the client wins throughput without
// touching the trust model: credentials are still checked on every RPC
// the server sees.
//
// Consistency is close-to-open, exactly as NFS clients provide it:
//
//   - Open revalidates the file against the server (a fresh GETATTR
//     through the attribute cache); a changed mtime or size drops every
//     clean cached block.
//   - Close (and Sync) drain the write-behind queue and return the first
//     deferred write error — the error barrier of write(2)-then-close on
//     a real NFS mount.
//
// Between open and close, reads may serve cached data that a concurrent
// remote writer has already overwritten, and writes may sit dirty on the
// client for a flush delay; a reader that needs another client's writes
// must open after the writer's close.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"discfs/internal/nfs"
	"discfs/internal/vfs"
)

// Process-global data-cache counters (like the buffer pool's): block
// lookups served from cache vs. fetched over RPC, summed across every
// client in the process. The server's metrics registry bridges them in,
// so a co-located client's hit rate shows up on /metrics.
var (
	dcHits   atomic.Uint64
	dcMisses atomic.Uint64
)

// DataCacheStats reports the process-wide data-cache block lookup
// counters (hits served locally, misses fetched over RPC).
func DataCacheStats() (hits, misses uint64) {
	return dcHits.Load(), dcMisses.Load()
}

const (
	// DefaultReadahead is the number of blocks prefetched ahead of a
	// detected sequential read stream, at the 8 KiB baseline granule
	// (larger granules scale the count down by bytes; see normalized).
	DefaultReadahead = 8
	// DefaultWriteBehind is the write-behind window at the baseline
	// granule: the number of dirty blocks buffered client-side before
	// writers are throttled (4 MiB at the 8 KiB block size — a sliver
	// of what kernel page caches allow via vm.dirty_ratio, but enough
	// to absorb bursts whole).
	DefaultWriteBehind = 512
	// maxFlushWorkers bounds the goroutines flushing one file's dirty
	// blocks concurrently (concurrent WRITE RPCs pipeline through the
	// connection and the server's per-record dispatch).
	maxFlushWorkers = 8
	// maxCachedBytes bounds the per-file cache footprint; clean blocks
	// beyond it are evicted, dirty blocks never are.
	maxCachedBytes = 16 << 20
	// maxUnstableBytes bounds the flushed-but-uncommitted data pinned
	// in the cache: past it the writer issues an intermediate COMMIT,
	// the way kernel NFS clients bound dirty-plus-unstable pages, so a
	// streaming write cannot pin the whole file in memory until Sync.
	maxUnstableBytes = 8 << 20
	// maxHandleCaches bounds how many files keep their cache after the
	// last close (retained so a re-open can revalidate instead of
	// refetching).
	maxHandleCaches = 64
	// partialFlushDelay is how long a partially filled dirty block may
	// wait for adjacent writes to coalesce before it is flushed anyway.
	partialFlushDelay = 50 * time.Millisecond
)

// dataCacheConfig parameterizes the cache; the zero value means
// "enabled with defaults".
type dataCacheConfig struct {
	disabled    bool
	readahead   int // blocks prefetched on sequential reads; <0 disables
	writeBehind int // dirty-block window; <0 means write-through-ish (1)
	// maxTransfer is the transfer size to propose at attach; 0 means
	// nfs.DefaultMaxTransfer. The server's grant becomes the cache
	// granule.
	maxTransfer uint32
	// attrTTL is the attribute/name cache lifetime (rides here because
	// ClientOption closes over this struct); 0 means nfs.DefaultAttrTTL.
	attrTTL time.Duration
	// Federation (rides here for the same reason): extra shard servers,
	// static path grafts, and the consistent-hash-sharded subtree. All
	// empty for a classic single-server client.
	fedServers []string
	fedGrafts  map[string]int
	fedSubtree string
}

// normalized resolves defaults for a cache whose granule is bs bytes —
// the connection's negotiated transfer size, so every full-block
// readahead fetch and write-behind flush is exactly one maximal RPC.
// Explicit option values count granules; the defaults are byte-scaled
// from the 8 KiB baseline so a large granule does not inflate the
// window (512 dirty blocks meant 4 MiB, not 256 MiB).
func (cfg dataCacheConfig) normalized(bs int64) dataCacheConfig {
	if cfg.readahead == 0 {
		cfg.readahead = scaleBlocks(DefaultReadahead*int64(nfs.MaxData), bs, 2, DefaultReadahead)
	}
	if cfg.readahead < 0 {
		cfg.readahead = 0
	}
	if cfg.writeBehind == 0 {
		cfg.writeBehind = scaleBlocks(DefaultWriteBehind*int64(nfs.MaxData), bs, 4, DefaultWriteBehind)
	}
	if cfg.writeBehind < 1 {
		cfg.writeBehind = 1
	}
	return cfg
}

// scaleBlocks converts a byte budget into whole granules within
// [min, max].
func scaleBlocks(bytes, bs int64, min, max int) int {
	n := int(bytes / bs)
	if n < min {
		return min
	}
	if n > max {
		return max
	}
	return n
}

// cblock is one cached block. data holds the valid bytes from the block
// start; a block shorter than the cache granule is valid only to len(data),
// and bytes beyond any block's data read as zeros (holes).
type cblock struct {
	data     []byte
	dirty    bool
	dirtyOff int // dirty extent within data, [dirtyOff, dirtyEnd)
	dirtyEnd int
	dirtyGen uint64 // bumped by every write; a flush only cleans its own generation
	flushing bool
	// cow marks data as lent to an in-flight flush RPC: a writer that
	// wants to mutate the block first detaches onto a private copy, so
	// the flush reads a stable buffer without snapshotting every flush
	// (sequential streams never touch a flushing block, making the
	// steady-state flush zero-copy).
	cow bool
	// ownWrite marks a block whose full extent this client flushed: the
	// server verifiably holds exactly data, so an identical overwrite
	// may be elided (NOP-write). Blocks merely fetched never qualify —
	// a remote writer may have changed the server since the fetch.
	ownWrite bool
	// unstable marks a block flushed to the server but not yet covered
	// by a COMMIT barrier: against a write-behind server the WRITE
	// reply promises nothing durable, so the block is pinned in the
	// cache (never evicted) until a COMMIT with an unchanged boot
	// verifier confirms it — or replayed if the verifier moved (the
	// NFSv3 client write path).
	unstable bool
	// flushedSeq is the flush-sequence number of the last completed
	// flush of this block. A COMMIT only confirms blocks whose flush
	// reply preceded it (flushedSeq at most the sequence at COMMIT
	// issue); blocks flushed while the COMMIT was on the wire stay
	// unstable for the next barrier.
	flushedSeq uint64
}

// handleCache is the cache of one remote file, shared by every File a
// Client has open on the handle and retained across closes so a re-open
// can revalidate cheaply.
type handleCache struct {
	c  *Client
	sh *shard // the shard owning h; all cache RPCs go there
	h  vfs.Handle

	mu   sync.Mutex
	cond *sync.Cond // wakes flush workers, drain waiters and throttled writers

	// bs is the cache granule: the connection's negotiated transfer
	// size, so one full block moves as exactly one READ/WRITE RPC.
	bs int64
	// maxCached/maxUnstable are maxCachedBytes/maxUnstableBytes in
	// granules.
	maxCached   int
	maxUnstable int

	cfg      dataCacheConfig
	blocks   map[int64]*cblock
	fetching map[int64]*fetchState // in-flight block reads, for dedup
	inval    uint64                // invalidation epoch: stale in-flight fetches aren't cached

	// size is the logical file size: the server's size plus any
	// unflushed extension by local writes. Reads EOF against it.
	size int64
	// srvSize is the last size observed from the server, deciding which
	// blocks exist server-side (fetch vs hole).
	srvSize uint64
	// valMtime/valSize are the close-to-open validator: the server state
	// the cached blocks correspond to. Updated by revalidation and by
	// our own flush replies (so self-inflicted mtime changes do not
	// invalidate the cache on the next open).
	valMtime time.Time
	valSize  uint64
	haveVal  bool

	nDirty      int
	nUnstable   int    // flushed-but-uncommitted blocks (see cblock.unstable)
	commitVer   uint64 // server boot verifier observed at the last COMMIT
	haveVer     bool
	verFetching bool  // a flush worker is fetching the verifier baseline
	committing  bool  // a writer-triggered intermediate COMMIT is in flight
	lastWrite   int64 // block index of the most recent write; held back briefly to coalesce
	draining    int   // >0: a Sync/Close is waiting, every dirty block is flush-eligible
	timerArmed  bool
	flushSeq    uint64 // bumped on every flush completion; orders GETATTRs vs flushes
	werr        error  // first deferred write error since the last barrier

	refs    int  // open Files
	stopped bool // set when refs drop to zero or the client closes; workers exit once clean
	workers int

	// flushCtx bounds flush RPCs: the context of the most recent writer
	// (canceling it aborts in-flight flushes; the error surfaces at the
	// next barrier).
	flushCtx context.Context

	raNext int64 // next expected sequential read offset
}

// ---- Client-side registry ----

// handleCacheFor returns the (possibly retained) cache for h, creating
// it under the client's configuration.
func (c *Client) handleCacheFor(h vfs.Handle) *handleCache {
	c.dcMu.Lock()
	defer c.dcMu.Unlock()
	if hc, ok := c.dcaches[h]; ok {
		return hc
	}
	if len(c.dcaches) >= maxHandleCaches {
		for k, hc := range c.dcaches {
			hc.mu.Lock()
			idle := hc.refs == 0 && hc.nDirty == 0
			hc.mu.Unlock()
			if idle {
				delete(c.dcaches, k)
				if len(c.dcaches) < maxHandleCaches {
					break
				}
			}
		}
	}
	sh := c.shardOf(h)
	bs := int64(sh.xfer)
	if bs == 0 {
		bs = nfs.MaxData
	}
	hc := &handleCache{
		c:           c,
		sh:          sh,
		h:           h,
		bs:          bs,
		maxCached:   scaleBlocks(maxCachedBytes, bs, 8, maxCachedBytes/nfs.MaxData),
		maxUnstable: scaleBlocks(maxUnstableBytes, bs, 4, maxUnstableBytes/nfs.MaxData),
		cfg:         c.dataCache.normalized(bs),
		blocks:      make(map[int64]*cblock),
		fetching:    make(map[int64]*fetchState),
		lastWrite:   -1,
		flushCtx:    context.Background(),
	}
	hc.cond = sync.NewCond(&hc.mu)
	c.dcaches[h] = hc
	return hc
}

// shutdownCaches releases every flush worker; called from Client.Close.
// Dirty blocks drain against the closed connection (each flush fails
// fast and is dropped), so workers exit promptly.
func (c *Client) shutdownCaches() {
	c.dcMu.Lock()
	defer c.dcMu.Unlock()
	for _, hc := range c.dcaches {
		hc.mu.Lock()
		hc.stopped = true
		hc.cond.Broadcast()
		hc.mu.Unlock()
	}
}

// ---- lifecycle ----

// addRef records an open File on the cache.
func (hc *handleCache) addRef() {
	hc.mu.Lock()
	hc.refs++
	hc.stopped = false
	hc.mu.Unlock()
}

// release drops a File's reference; the last release lets idle flush
// workers exit (the blocks stay cached for the next open).
func (hc *handleCache) release() {
	hc.mu.Lock()
	hc.refs--
	if hc.refs <= 0 {
		hc.stopped = true
		hc.cond.Broadcast()
	}
	hc.mu.Unlock()
}

// flushSeqNow snapshots the flush-completion counter; pass it to
// revalidate to detect flushes racing the revalidation GETATTR.
func (hc *handleCache) flushSeqNow() uint64 {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return hc.flushSeq
}

// revalidate applies the close-to-open check against fresh server
// attributes: if the file changed under us (mtime or size moved and it
// wasn't our own flush), every clean block is dropped. Dirty blocks are
// kept — they are this client's unflushed writes. seq is the
// flushSeqNow snapshot taken before the GETATTR was issued.
func (hc *handleCache) revalidate(a vfs.Attr, seq uint64) {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	if hc.haveVal && (!a.Mtime.Equal(hc.valMtime) || a.Size != hc.valSize) {
		for idx, b := range hc.blocks {
			// Unstable blocks are this client's own flushed-but-
			// uncommitted writes: they must survive for replay.
			if !b.dirty && !b.flushing && !b.unstable {
				delete(hc.blocks, idx)
			}
		}
		hc.inval++ // fetches started before this point must not install
	}
	hc.haveVal = true
	hc.valMtime, hc.valSize = a.Mtime, a.Size
	// Adopt the server's size only when the cache was quiescent across
	// the whole GETATTR: with flushes in flight — or completed while
	// the GETATTR was on the wire (seq moved) — the reply may report a
	// size the server has already moved past, and regressing srvSize
	// would make reads treat flushed data as holes. While busy, sizes
	// only ratchet up.
	busy := hc.nDirty > 0 || len(hc.fetching) > 0 || hc.flushSeq != seq
	if !busy {
		for _, b := range hc.blocks {
			if b.flushing {
				busy = true
				break
			}
		}
	}
	if busy {
		if a.Size > hc.srvSize {
			hc.srvSize = a.Size
		}
		if int64(a.Size) > hc.size {
			hc.size = int64(a.Size)
		}
		return
	}
	hc.srvSize = a.Size
	hc.size = int64(a.Size)
	for idx, b := range hc.blocks {
		if b.dirty {
			if end := idx*hc.bs + int64(len(b.data)); end > hc.size {
				hc.size = end
			}
		}
	}
}

// logicalSize returns the file size as this client sees it (server size
// plus unflushed local extension).
func (hc *handleCache) logicalSize() int64 {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return hc.size
}

// ---- read path ----

// readAt copies file content at off into p, serving cached blocks and
// fetching missing ones from the server. It returns io.EOF at (and
// beyond) end of file, and triggers asynchronous readahead when the
// access pattern is sequential.
func (hc *handleCache) readAt(ctx context.Context, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("core: read at %d: %w", off, vfs.ErrInval)
	}
	if len(p) == 0 {
		return 0, nil
	}
	hc.mu.Lock()
	if off >= hc.size {
		hc.raNext = off // a repeated tail read still counts as sequential
		hc.mu.Unlock()
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > hc.size-off {
		n = int(hc.size - off)
	}
	first := off / hc.bs
	last := (off + int64(n) - 1) / hc.bs
	// Holes (bytes no block covers) read as zeros.
	for i := range p[:n] {
		p[i] = 0
	}
	// Obtain-and-copy one block at a time: blockBytesLocked releases
	// the lock around its RPC, and a concurrent open's revalidation may
	// drop already-obtained blocks in that window — so each block's
	// bytes are taken in the same critical section that obtained them.
	for idx := first; idx <= last; idx++ {
		bdata, err := hc.blockBytesLocked(ctx, idx)
		if err != nil {
			hc.mu.Unlock()
			return 0, err
		}
		if bdata == nil {
			continue
		}
		bs := idx * hc.bs
		lo, hi := off, off+int64(n)
		if bs > lo {
			lo = bs
		}
		if e := bs + int64(len(bdata)); e < hi {
			hi = e
		}
		if hi > lo {
			copy(p[lo-off:hi-off], bdata[lo-bs:hi-bs])
		}
	}
	sequential := off == hc.raNext || off == 0
	hc.raNext = off + int64(n)
	if sequential && hc.cfg.readahead > 0 {
		hc.readaheadLocked(ctx, last+1)
	}
	hc.mu.Unlock()
	return n, nil
}

// fetchState carries one in-flight block READ so concurrent callers
// share the RPC: data/err are valid once done is closed. The data is a
// server snapshot valid for the reads that raced it even when an
// invalidation (open revalidation, truncate) forbids caching it.
type fetchState struct {
	done chan struct{}
	data []byte
	err  error
}

// blockBytesLocked returns the bytes backing block idx: the cached
// block if present, else a server fetch (shared with concurrent
// callers). nil means the block is a hole. The lock is released around
// the RPC and held again on return, so the caller must consume the
// bytes before unlocking.
func (hc *handleCache) blockBytesLocked(ctx context.Context, idx int64) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if b := hc.blocks[idx]; b != nil {
			if attempt == 0 {
				dcHits.Add(1)
			}
			return b.data, nil
		}
		if uint64(idx*hc.bs) >= hc.srvSize {
			if attempt == 0 {
				dcHits.Add(1) // in-bounds hole: answered without an RPC
			}
			return nil, nil
		}
		if fs, ok := hc.fetching[idx]; ok {
			hc.mu.Unlock()
			select {
			case <-fs.done:
				hc.mu.Lock()
			case <-ctx.Done():
				hc.mu.Lock()
				return nil, ctx.Err()
			}
			if fs.err != nil {
				lastErr = fs.err // the racer failed; retry ourselves
				continue
			}
			// Prefer the live block (a local write may have superseded
			// the fetch); otherwise the racer's snapshot serves.
			if b := hc.blocks[idx]; b != nil {
				return b.data, nil
			}
			return fs.data, nil
		}
		fs := &fetchState{done: make(chan struct{})}
		hc.fetching[idx] = fs
		dcMisses.Add(1)
		epoch := hc.inval
		hc.mu.Unlock()
		hc.fetch(ctx, idx, fs, epoch)
		hc.mu.Lock()
		if fs.err != nil {
			return nil, fs.err
		}
		if b := hc.blocks[idx]; b != nil {
			return b.data, nil
		}
		return fs.data, nil
	}
	return nil, lastErr
}

// fetch reads one block from the server into fs and, when permitted,
// installs it in the cache. It must be called without the lock, by the
// goroutine that registered fs in hc.fetching; epoch is the
// invalidation epoch at registration time — a reply from before an
// invalidation is served to waiters but not cached.
func (hc *handleCache) fetch(ctx context.Context, idx int64, fs *fetchState, epoch uint64) {
	start := idx * hc.bs
	var data []byte
	var err error
	if start > math.MaxUint32 {
		err = fmt.Errorf("core: offset %d beyond NFSv2 range: %w", start, vfs.ErrFBig)
	} else {
		// Spread fetches across the data-connection pool so concurrent
		// readahead pipelines instead of queueing on one channel.
		// The reply's attributes are deliberately NOT folded into
		// srvSize: a READ that raced our in-flight flushes reports a
		// size the server has moved past, and shrinking srvSize would
		// turn flushed data into holes. Remote truncation is adopted at
		// the next quiescent open (close-to-open).
		data, _, err = hc.sh.dataConn(ctx, idx).Read(ctx, hc.h, uint32(start), uint32(hc.bs))
	}
	hc.mu.Lock()
	delete(hc.fetching, idx)
	if err != nil {
		fs.err = hc.c.wireError(err)
	} else {
		fs.data = data
		// A block written locally while the fetch was in flight is
		// newer truth, and a reply predating an invalidation is stale;
		// install only over a hole in the current epoch.
		if hc.blocks[idx] == nil && len(data) > 0 && hc.inval == epoch {
			hc.installLocked(idx, &cblock{data: data})
		}
	}
	close(fs.done)
	hc.mu.Unlock()
}

// readaheadLocked starts asynchronous fetches for up to cfg.readahead
// blocks from idx, skipping blocks already cached, in flight, or beyond
// the server file.
func (hc *handleCache) readaheadLocked(ctx context.Context, idx int64) {
	for i := int64(0); i < int64(hc.cfg.readahead); i++ {
		k := idx + i
		if uint64(k*hc.bs) >= hc.srvSize {
			return
		}
		if hc.blocks[k] != nil || hc.fetching[k] != nil {
			continue
		}
		fs := &fetchState{done: make(chan struct{})}
		hc.fetching[k] = fs
		// Readahead is advisory: errors are dropped, the demand read
		// will refetch and report.
		go hc.fetch(ctx, k, fs, hc.inval)
	}
}

// installLocked stores a block, evicting arbitrary clean blocks beyond
// the footprint cap.
func (hc *handleCache) installLocked(idx int64, b *cblock) {
	hc.blocks[idx] = b
	if len(hc.blocks) <= hc.maxCached {
		return
	}
	for k, v := range hc.blocks {
		if k != idx && !v.dirty && !v.flushing && !v.unstable {
			delete(hc.blocks, k)
			if len(hc.blocks) <= hc.maxCached {
				return
			}
		}
	}
}

// ---- write path ----

// writeAt buffers p at off, marking blocks dirty for the background
// flush workers, and throttles while the write-behind window is full.
// The data is durable on the server only after a successful Sync or
// Close (the error barrier).
func (hc *handleCache) writeAt(ctx context.Context, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("core: write at %d: %w", off, vfs.ErrInval)
	}
	if off+int64(len(p)) > math.MaxUint32 {
		return 0, fmt.Errorf("core: offset %d beyond NFSv2 range: %w", off+int64(len(p)), vfs.ErrFBig)
	}
	total := 0
	for total < len(p) {
		at := off + int64(total)
		idx := at / hc.bs
		bo := int(at - idx*hc.bs)
		n := int(hc.bs) - bo
		if n > len(p)-total {
			n = len(p) - total
		}
		if err := hc.writeBlock(ctx, idx, bo, p[total:total+n]); err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// writeBlock applies one intra-block write.
func (hc *handleCache) writeBlock(ctx context.Context, idx int64, bo int, p []byte) error {
	start := idx * hc.bs
	hc.mu.Lock()
	b := hc.blocks[idx]
	if b == nil {
		// Read-modify-write: when the server holds bytes of this block
		// the write does not cover, fetch them first so the flushed
		// extent carries correct base data.
		srvEnd := hc.srvSize
		if e := uint64(start) + uint64(hc.bs); srvEnd > e {
			srvEnd = e
		}
		partial := bo > 0 || uint64(start)+uint64(bo+len(p)) < srvEnd
		if partial && uint64(start) < hc.srvSize {
			base, err := hc.blockBytesLocked(ctx, idx)
			if err != nil {
				hc.mu.Unlock()
				return err
			}
			b = hc.blocks[idx]
			if b == nil && len(base) > 0 {
				// The fetch could not be cached (an invalidation raced
				// it), but it is still the read-modify-write base for
				// this write; install a private copy to mutate.
				b = &cblock{data: append([]byte(nil), base...)}
				hc.installLocked(idx, b)
			}
		}
	}
	if b == nil {
		b = &cblock{}
		hc.installLocked(idx, b)
	}
	end := bo + len(p)
	if end <= len(b.data) && bytes.Equal(b.data[bo:end], p) &&
		(b.ownWrite || (b.dirty && bo >= b.dirtyOff && end <= b.dirtyEnd)) {
		// NOP-write elimination (as ZFS's nop-write): the bytes are
		// either queued to flush (inside the dirty extent) or were the
		// last thing this client flushed to the block (ownWrite), so an
		// identical WRITE RPC buys nothing. Bytes that merely match a
		// fetched clean block do NOT qualify: the server may have moved
		// since the fetch, and Close's "data is on the server" promise
		// requires the write to actually flush.
		hc.mu.Unlock()
		return nil
	}
	b.ownWrite = false
	if b.cow {
		// The buffer is lent to an in-flight flush RPC: mutate a
		// private copy and leave the lent array to the flush.
		b.data = append([]byte(nil), b.data...)
		b.cow = false
	}
	if len(b.data) < end {
		b.data = append(b.data, make([]byte, end-len(b.data))...)
	}
	copy(b.data[bo:end], p)
	if !b.dirty {
		b.dirty = true
		b.dirtyOff, b.dirtyEnd = bo, end
		hc.nDirty++
	} else {
		if bo < b.dirtyOff {
			b.dirtyOff = bo
		}
		if end > b.dirtyEnd {
			b.dirtyEnd = end
		}
	}
	b.dirtyGen++
	hc.lastWrite = idx
	if e := start + int64(len(b.data)); e > hc.size {
		hc.size = e
	}
	hc.flushCtx = ctx
	hc.ensureWorkersLocked()
	hc.cond.Broadcast()
	// Too many flushed-but-uncommitted blocks pinned: run an
	// intermediate COMMIT (single-flight) so a streaming write's
	// footprint stays bounded instead of pinning the whole file until
	// Sync. Confirmed blocks become clean and evictable.
	if hc.nUnstable >= hc.maxUnstable && !hc.committing && hc.haveVer && hc.werr == nil {
		hc.committing = true
		hc.commitBarrierLocked(ctx)
		hc.committing = false
	}
	// Write-behind window: wait for the flushers to catch up. A flush
	// error drains its block, so this cannot wedge; the error itself is
	// reported at the next barrier.
	for hc.nDirty > hc.cfg.writeBehind && hc.werr == nil {
		hc.cond.Wait()
	}
	hc.mu.Unlock()
	return nil
}

// ---- flushing ----

// ensureWorkersLocked keeps the flush worker pool running while there
// is (or may be) dirty data.
func (hc *handleCache) ensureWorkersLocked() {
	max := hc.cfg.writeBehind
	if max > maxFlushWorkers {
		max = maxFlushWorkers
	}
	for hc.workers < max {
		id := hc.workers
		hc.workers++
		go hc.flushWorker(id)
	}
}

// flushEligibleLocked reports whether b may be flushed now. Full blocks
// always may; a partially filled block is held back briefly so adjacent
// small writes coalesce into one full WRITE — unless a barrier is
// draining, the window is over pressure, or the writer has moved on.
func (hc *handleCache) flushEligibleLocked(idx int64, b *cblock) bool {
	if !b.dirty || b.flushing {
		return false
	}
	if b.dirtyEnd-b.dirtyOff >= int(hc.bs) {
		return true
	}
	return hc.draining > 0 || hc.nDirty > hc.cfg.writeBehind || idx != hc.lastWrite
}

// pickDirtyLocked returns the lowest-offset flush-eligible block.
func (hc *handleCache) pickDirtyLocked() (int64, *cblock) {
	var best *cblock
	var bestIdx int64
	for idx, b := range hc.blocks {
		if hc.flushEligibleLocked(idx, b) && (best == nil || idx < bestIdx) {
			best, bestIdx = b, idx
		}
	}
	return bestIdx, best
}

// flushWorker drains dirty blocks until the cache is stopped and clean.
// Each worker flushes over its own data-path connection, so concurrent
// WRITE RPCs overlap on the wire (nconnect-style).
func (hc *handleCache) flushWorker(id int) {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	for {
		// Establish the verifier baseline before the first flush ever
		// completes: a WRITE acknowledged with no baseline would leave a
		// server restart in the write-to-first-COMMIT window
		// undetectable (our v2-style WRITE reply carries no verifier,
		// so the baseline comes from a no-op COMMIT up front).
		if !hc.haveVer && hc.werr == nil && hc.nDirty > 0 {
			if hc.verFetching {
				hc.cond.Wait()
				continue
			}
			hc.verFetching = true
			ctx := hc.flushCtx
			hc.mu.Unlock()
			_, ver, err := hc.sh.nfsc(ctx).Commit(ctx, hc.h)
			hc.mu.Lock()
			hc.verFetching = false
			if err == nil {
				hc.commitVer, hc.haveVer = ver, true
			} else if hc.werr == nil {
				hc.werr = fmt.Errorf("core: commit baseline: %w", hc.c.wireError(err))
			}
			hc.cond.Broadcast()
			continue
		}
		idx, b := hc.pickDirtyLocked()
		if b == nil {
			if hc.stopped && hc.nDirty == 0 {
				hc.workers--
				return
			}
			// Ineligible partial blocks age out: arm a timer that lifts
			// the coalescing hold so a lone small write still reaches
			// the server without a barrier.
			if hc.nDirty > 0 && !hc.timerArmed {
				hc.timerArmed = true
				time.AfterFunc(partialFlushDelay, func() {
					hc.mu.Lock()
					hc.timerArmed = false
					hc.lastWrite = -1
					hc.cond.Broadcast()
					hc.mu.Unlock()
				})
			}
			hc.cond.Wait()
			continue
		}
		b.flushing = true
		b.cow = true // writers detach onto a private copy while we send
		gen := b.dirtyGen
		fOff, fEnd := b.dirtyOff, b.dirtyEnd
		snap := b.data[fOff:fEnd] // stable under cow: no snapshot copy
		start := idx*hc.bs + int64(fOff)
		ctx := hc.flushCtx
		hc.mu.Unlock()

		attr, err := hc.sh.dataConn(ctx, int64(id)).Write(ctx, hc.h, uint32(start), snap)

		hc.mu.Lock()
		b.flushing = false
		b.cow = false
		hc.flushSeq++
		if err != nil {
			if hc.werr == nil {
				hc.werr = fmt.Errorf("core: deferred write at offset %d: %w", start, hc.c.wireError(err))
			}
			// The write is lost (and reported at the barrier); drop the
			// block so reads refetch server truth.
			if b.unstable {
				b.unstable = false
				hc.nUnstable--
			}
			delete(hc.blocks, idx)
			hc.nDirty--
		} else {
			// Our own flush moved the server mtime; fold the reply into
			// the validator so the next open does not self-invalidate.
			// Both fields only ratchet: concurrent flush replies land
			// out of order, and a regressed srvSize would let a later
			// write skip its read-modify-write fetch, while a regressed
			// validator would spuriously invalidate the cache.
			if attr.Mtime.After(hc.valMtime) {
				hc.valMtime = attr.Mtime
			}
			if attr.Size > hc.valSize {
				hc.valSize = attr.Size
			}
			if attr.Size > hc.srvSize {
				hc.srvSize = attr.Size
			}
			if b.dirtyGen == gen {
				b.dirty = false
				b.dirtyOff, b.dirtyEnd = 0, 0
				hc.nDirty--
				// A flush that covered the whole block leaves the
				// server verifiably holding exactly b.data.
				b.ownWrite = fOff == 0 && fEnd == len(b.data)
			}
			// else: re-dirtied mid-flush; the merged extent re-flushes.
			// Either way the server now holds this flush unstably; the
			// block is pinned until a COMMIT barrier confirms it.
			if !b.unstable {
				b.unstable = true
				hc.nUnstable++
			}
			b.flushedSeq = hc.flushSeq
		}
		hc.cond.Broadcast()
	}
}

// kick lifts the coalescing hold on partial dirty blocks — the
// Seek-discontinuity flush trigger.
func (hc *handleCache) kick() {
	hc.mu.Lock()
	hc.lastWrite = -1
	hc.cond.Broadcast()
	hc.mu.Unlock()
}

// commitBarrierLocked issues one COMMIT and applies its outcome. On
// success it confirms exactly the blocks whose flush reply preceded
// the COMMIT (flushedSeq at most the sequence at issue) — blocks
// flushed while the COMMIT was on the wire stay unstable for the next
// barrier. A verifier that moved since the last COMMIT means the
// server restarted and may have lost acknowledged writes: every
// unstable block is re-dirtied for replay (the NFSv3 client restart
// protocol) and retry is reported. Caller holds hc.mu.
func (hc *handleCache) commitBarrierLocked(ctx context.Context) (retry bool) {
	snapSeq := hc.flushSeq
	if ctx == nil {
		ctx = hc.flushCtx
	}
	hc.mu.Unlock()
	attr, ver, err := hc.sh.nfsc(ctx).Commit(ctx, hc.h)
	hc.mu.Lock()
	if err != nil {
		if hc.werr == nil {
			hc.werr = fmt.Errorf("core: commit: %w", hc.c.wireError(err))
		}
		return false // unstable blocks stay pinned for the next barrier
	}
	if hc.haveVer && ver != hc.commitVer {
		hc.commitVer = ver
		// Replay: everything uncommitted may have been lost.
		for _, b := range hc.blocks {
			if !b.unstable {
				continue
			}
			b.unstable = false
			hc.nUnstable--
			b.ownWrite = false
			b.dirtyOff, b.dirtyEnd = 0, len(b.data)
			b.dirtyGen++
			if !b.dirty {
				b.dirty = true
				hc.nDirty++
			}
		}
		hc.cond.Broadcast()
		return true
	}
	hc.commitVer, hc.haveVer = ver, true
	for _, b := range hc.blocks {
		if b.unstable && b.flushedSeq <= snapSeq {
			b.unstable = false
			hc.nUnstable--
		}
	}
	// The commit reply is post-flush server truth: ratchet the
	// validator so the next open does not self-invalidate.
	if attr.Mtime.After(hc.valMtime) {
		hc.valMtime = attr.Mtime
	}
	if attr.Size > hc.valSize {
		hc.valSize = attr.Size
	}
	if attr.Size > hc.srvSize {
		hc.srvSize = attr.Size
	}
	hc.cond.Broadcast()
	return false
}

// sync drains the write-behind queue, runs the COMMIT durability
// barrier, and returns (and clears) the first deferred write error —
// the NFS error barrier, shared by File.Sync and File.Close.
//
// Against a write-behind server the drained WRITEs are only unstable;
// COMMIT makes them durable. The loop retries while the server's boot
// verifier keeps moving (replay after restart, bounded) — but one
// successful barrier suffices: unstable blocks it did not cover belong
// to writes concurrent with this sync, which the next barrier owns.
func (hc *handleCache) sync(ctx context.Context) error {
	hc.mu.Lock()
	hc.draining++
	if ctx != nil {
		hc.flushCtx = ctx
	}
	hc.ensureWorkersLocked()
	hc.cond.Broadcast()
	for attempt := 0; ; attempt++ {
		for hc.nDirty > 0 {
			hc.cond.Wait()
		}
		if hc.werr != nil || hc.nUnstable == 0 {
			break
		}
		if attempt > 4 {
			if hc.werr == nil {
				hc.werr = fmt.Errorf("core: commit: server restarted repeatedly during replay: %w", vfs.ErrIO)
			}
			break
		}
		if !hc.commitBarrierLocked(ctx) {
			break // success (or a deferred error); no replay needed
		}
	}
	hc.draining--
	err := hc.werr
	hc.werr = nil
	hc.mu.Unlock()
	return err
}

// truncate resets the cache to the post-SetAttr server state. The
// caller must have drained pending writes first.
func (hc *handleCache) truncate(a vfs.Attr) {
	hc.mu.Lock()
	for idx, b := range hc.blocks {
		if !b.flushing {
			if b.dirty {
				hc.nDirty--
			}
			if b.unstable {
				hc.nUnstable--
			}
			delete(hc.blocks, idx)
		}
	}
	hc.inval++ // in-flight fetches carry pre-truncate bytes
	hc.haveVal = true
	hc.valMtime, hc.valSize = a.Mtime, a.Size
	hc.srvSize = a.Size
	hc.size = int64(a.Size)
	hc.cond.Broadcast()
	hc.mu.Unlock()
}
