package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"discfs/internal/nfs"
	"discfs/internal/vfs"
)

// File is a streaming handle on a remote DisCFS file. It implements
// io.Reader, io.Writer, io.Seeker, io.ReaderAt, io.WriterAt and
// io.Closer, chunking transfers into NFS READ/WRITE calls of at most
// the connection's negotiated transfer size each (512 KiB by default,
// 8 KiB against v2-era servers), so arbitrarily large files move
// without ever being buffered whole on either side.
//
// Unless the client was dialed with WithNoDataCache, file I/O runs
// through a client-side block cache with sequential readahead and
// write-behind (see datacache.go). Writes may be acknowledged before
// they reach the server; Sync and Close drain them and return the first
// deferred write error — the NFS error barrier. Consistency across
// clients is close-to-open: Open revalidates against the server, so a
// reader that opens after a writer's Close sees the writer's data.
//
// The context passed to Open governs every RPC the File issues;
// canceling it aborts in-flight and future operations, including
// background flushes. A File is safe for concurrent use; the read/write
// cursor is shared, as with os.File, and positioned I/O (ReadAt/WriteAt)
// runs in parallel without touching the cursor.
type File struct {
	c    *Client
	sh   *shard // the shard owning h; every RPC the File issues goes there
	ctx  context.Context
	h    vfs.Handle
	path string
	cred string // creator credential when Open created the file

	readable bool
	writable bool
	append_  bool

	dc *handleCache // nil when the data cache is disabled

	size  atomic.Int64 // last size observed from the server (uncached path)
	wrote atomic.Bool  // uncached path: WRITEs issued since the last COMMIT

	mu     sync.Mutex // guards the cursor and the closed flag
	pos    int64
	closed bool
}

// Open opens the file at path. flag is the standard os.O_* bitmask:
// os.O_RDONLY, os.O_WRONLY, os.O_RDWR, optionally combined with
// os.O_CREATE (create if missing, returning the creator credential),
// os.O_EXCL (with O_CREATE: fail if the file exists — best-effort, as
// NFSv2 CREATE has no exclusive mode), os.O_TRUNC (truncate on open)
// and os.O_APPEND (start the cursor at end-of-file).
//
// Open fails with an error matching ErrNotExist when the file is missing
// and os.O_CREATE is not set, and with ErrAccessDenied when credentials
// do not permit the requested access.
func (c *Client) Open(ctx context.Context, path string, flag int) (*File, error) {
	acc := flag & (os.O_RDONLY | os.O_WRONLY | os.O_RDWR)
	f := &File{
		c:        c,
		ctx:      ctx,
		path:     path,
		readable: acc == os.O_RDONLY || acc == os.O_RDWR,
		writable: acc == os.O_WRONLY || acc == os.O_RDWR,
		append_:  flag&os.O_APPEND != 0,
	}
	dir, name, err := c.splitPath(ctx, path)
	if err != nil {
		return nil, err
	}
	sh := c.shardOf(dir)
	attr, err := sh.nfsc(ctx).Lookup(ctx, dir, name)
	switch {
	case err == nil:
		if flag&(os.O_CREATE|os.O_EXCL) == os.O_CREATE|os.O_EXCL {
			return nil, fmt.Errorf("core: open %s: %w", path, vfs.ErrExist)
		}
		if attr.Type == vfs.TypeDir {
			return nil, fmt.Errorf("core: open %s: %w", path, vfs.ErrIsDir)
		}
		if flag&os.O_TRUNC != 0 && f.writable {
			sa := nfs.NewSAttr()
			sa.Size = 0
			if attr, err = sh.nfsc(ctx).SetAttr(ctx, attr.Handle, sa); err != nil {
				return nil, c.wireError(err)
			}
		}
	case nfs.StatOf(err) == nfs.ErrNoEnt && flag&os.O_CREATE != 0:
		attr, f.cred, err = c.CreateWithCredential(ctx, dir, name, 0o644)
		if err != nil {
			return nil, err
		}
	default:
		return nil, c.wireError(err)
	}
	if err := c.finishOpen(ctx, f, attr); err != nil {
		return nil, err
	}
	return f, nil
}

// OpenHandle opens a File directly on an NFS handle, bypassing path
// resolution — for tools and benchmarks that already hold handles. flag
// takes the access bits (os.O_RDONLY, os.O_WRONLY, os.O_RDWR) plus
// os.O_APPEND; creation flags are not supported.
func (c *Client) OpenHandle(ctx context.Context, h vfs.Handle, flag int) (*File, error) {
	acc := flag & (os.O_RDONLY | os.O_WRONLY | os.O_RDWR)
	f := &File{
		c:        c,
		ctx:      ctx,
		path:     fmt.Sprintf("handle:%d.%d", h.Ino, h.Gen),
		readable: acc == os.O_RDONLY || acc == os.O_RDWR,
		writable: acc == os.O_WRONLY || acc == os.O_RDWR,
		append_:  flag&os.O_APPEND != 0,
	}
	attr, err := c.shardOf(h).nfsc(ctx).GetAttr(ctx, h)
	if err != nil {
		return nil, c.wireError(err)
	}
	if attr.Type == vfs.TypeDir {
		return nil, fmt.Errorf("core: open %s: %w", f.path, vfs.ErrIsDir)
	}
	if err := c.finishOpen(ctx, f, attr); err != nil {
		return nil, err
	}
	return f, nil
}

// finishOpen binds the opened attributes to f and, when the data cache
// is enabled, attaches the handle's cache after a close-to-open
// revalidation: a fresh GETATTR (through the attribute cache) whose
// mtime/size is compared against the cache's validator, invalidating
// stale blocks.
func (c *Client) finishOpen(ctx context.Context, f *File, attr vfs.Attr) error {
	f.h = attr.Handle
	f.sh = c.shardOf(attr.Handle)
	if c.dataCache.disabled {
		f.size.Store(int64(attr.Size))
	} else {
		hc := c.handleCacheFor(attr.Handle)
		seq := hc.flushSeqNow()
		fresh, err := f.sh.attrc(ctx).Revalidate(ctx, attr.Handle)
		if err != nil {
			return c.wireError(err)
		}
		hc.revalidate(fresh, seq)
		hc.addRef()
		f.dc = hc
	}
	if f.append_ {
		f.pos = f.Size()
	}
	return nil
}

// Handle returns the file's NFS handle.
func (f *File) Handle() vfs.Handle { return f.h }

// Name returns the path the file was opened with.
func (f *File) Name() string { return f.path }

// Credential returns the creator credential text when Open created the
// file (os.O_CREATE on a missing path), and "" otherwise.
func (f *File) Credential() string { return f.cred }

// Size returns the file size as this client sees it: the last size
// observed from the server plus any unflushed local writes.
func (f *File) Size() int64 {
	if f.dc != nil {
		return f.dc.logicalSize()
	}
	return f.size.Load()
}

// Stat returns the file's attributes — served from the client's
// attribute cache within its TTL when the data cache is enabled (as
// stat on an NFS mount is), fresh from the server otherwise. The
// reported size always reflects unflushed local writes.
func (f *File) Stat() (vfs.Attr, error) {
	if err := f.checkOpen(); err != nil {
		return vfs.Attr{}, err
	}
	var attr vfs.Attr
	var err error
	if f.dc != nil {
		attr, err = f.sh.attrc(f.ctx).GetAttr(f.ctx, f.h)
	} else {
		attr, err = f.sh.nfsc(f.ctx).GetAttr(f.ctx, f.h)
	}
	if err != nil {
		return vfs.Attr{}, f.c.wireError(err)
	}
	f.size.Store(int64(attr.Size))
	if f.dc != nil {
		if sz := f.dc.logicalSize(); sz > int64(attr.Size) {
			attr.Size = uint64(sz)
		}
	}
	return attr, nil
}

var errClosed = fmt.Errorf("core: file already closed")

// Read implements io.Reader, advancing the cursor. On the cached path a
// single call may return more than one NFS transfer's worth of data.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, errClosed
	}
	if !f.readable {
		return 0, fmt.Errorf("core: %s not opened for reading: %w", f.path, vfs.ErrPerm)
	}
	n, err := f.readChunk(p, f.pos)
	f.pos += int64(n)
	return n, err
}

// ReadAt implements io.ReaderAt; it does not move the cursor, and
// concurrent positioned reads proceed in parallel. Unlike Read it loops
// until p is full or the file ends, per the io.ReaderAt contract.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	if !f.readable {
		return 0, fmt.Errorf("core: %s not opened for reading: %w", f.path, vfs.ErrPerm)
	}
	total := 0
	for total < len(p) {
		n, err := f.readChunk(p[total:], off+int64(total))
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// checkOpen reports errClosed once Close has run.
func (f *File) checkOpen() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errClosed
	}
	return nil
}

// readChunk serves one read at off: from the data cache when enabled,
// otherwise as a single READ of at most the negotiated transfer size.
func (f *File) readChunk(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if f.dc != nil {
		return f.dc.readAt(f.ctx, p, off)
	}
	if off > math.MaxUint32 {
		return 0, fmt.Errorf("core: offset %d beyond NFSv2 range: %w", off, vfs.ErrFBig)
	}
	count := uint32(len(p))
	nc := f.sh.nfsc(f.ctx)
	if max := nc.MaxData(); count > max {
		count = max
	}
	n, attr, err := nc.ReadInto(f.ctx, f.h, uint32(off), p[:count])
	if err != nil {
		return 0, f.c.wireError(err)
	}
	f.size.Store(int64(attr.Size))
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Write implements io.Writer, advancing the cursor. The full slice is
// written (in negotiated-transfer chunks) or an error is returned; on
// the cached path "written" means buffered for write-behind, with
// errors deferred to Sync/Close.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, errClosed
	}
	if f.append_ {
		f.pos = f.Size()
	}
	n, err := f.writeAt(p, f.pos)
	f.pos += int64(n)
	return n, err
}

// WriteAt implements io.WriterAt; it does not move the cursor, and
// concurrent positioned writes proceed in parallel.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	return f.writeAt(p, off)
}

// writeAt chunks p into WRITEs starting at off (cached: buffers into
// the write-behind queue).
func (f *File) writeAt(p []byte, off int64) (int, error) {
	if !f.writable {
		return 0, fmt.Errorf("core: %s not opened for writing: %w", f.path, vfs.ErrPerm)
	}
	if f.dc != nil {
		return f.dc.writeAt(f.ctx, p, off)
	}
	nc := f.sh.nfsc(f.ctx)
	step := int(nc.MaxData())
	total := 0
	for total < len(p) {
		end := total + step
		if end > len(p) {
			end = len(p)
		}
		at := off + int64(total)
		if at > math.MaxUint32 {
			return total, fmt.Errorf("core: offset %d beyond NFSv2 range: %w", at, vfs.ErrFBig)
		}
		attr, err := nc.Write(f.ctx, f.h, uint32(at), p[total:end])
		if err != nil {
			return total, f.c.wireError(err)
		}
		f.size.Store(int64(attr.Size))
		f.wrote.Store(true)
		total = end
	}
	return total, nil
}

// commitUncached issues the COMMIT durability barrier for the uncached
// path: against a write-behind server the synchronous WRITEs above were
// only unstable. No-op when the File has not written.
func (f *File) commitUncached() error {
	if !f.wrote.Swap(false) {
		return nil
	}
	if _, _, err := f.sh.nfsc(f.ctx).Commit(f.ctx, f.h); err != nil {
		// The barrier did not happen: re-arm so a retried Sync/Close
		// issues the COMMIT again instead of reporting durability it
		// never got.
		f.wrote.Store(true)
		return f.c.wireError(err)
	}
	return nil
}

// Seek implements io.Seeker. Seeking relative to the end fetches fresh
// attributes so concurrent writers are observed. A discontinuous seek
// releases the write-behind coalescing hold, so buffered partial writes
// start flushing (the flush itself stays asynchronous).
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, errClosed
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		attr, err := f.sh.nfsc(f.ctx).GetAttr(f.ctx, f.h)
		if err != nil {
			return 0, f.c.wireError(err)
		}
		f.size.Store(int64(attr.Size))
		base = int64(attr.Size)
		if f.dc != nil {
			if sz := f.dc.logicalSize(); sz > base {
				base = sz
			}
		}
	default:
		return 0, fmt.Errorf("core: seek: invalid whence %d: %w", whence, vfs.ErrInval)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("core: seek to %d: %w", pos, vfs.ErrInval)
	}
	if f.dc != nil && pos != f.pos {
		f.dc.kick()
	}
	f.pos = pos
	return pos, nil
}

// Sync drains the write-behind queue, runs the COMMIT durability
// barrier, and returns the first deferred write error — the error
// barrier, as fsync(2) is on a real NFS mount. Without the data cache
// every write is already synchronous (but, against a server with
// write-behind enabled, still unstable), so Sync reduces to the COMMIT.
func (f *File) Sync() error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	if f.dc == nil {
		return f.commitUncached()
	}
	return f.dc.sync(f.ctx)
}

// Truncate resizes the file, draining buffered writes first.
func (f *File) Truncate(size int64) error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	if !f.writable {
		return fmt.Errorf("core: %s not opened for writing: %w", f.path, vfs.ErrPerm)
	}
	if size < 0 || size > math.MaxUint32 {
		return fmt.Errorf("core: truncate to %d: %w", size, vfs.ErrInval)
	}
	if f.dc != nil {
		if err := f.dc.sync(f.ctx); err != nil {
			return err
		}
	}
	sa := nfs.NewSAttr()
	sa.Size = uint32(size)
	attr, err := f.sh.nfsc(f.ctx).SetAttr(f.ctx, f.h, sa)
	if err != nil {
		return f.c.wireError(err)
	}
	f.size.Store(int64(attr.Size))
	if f.dc != nil {
		f.dc.truncate(attr)
	}
	return nil
}

// Close drains the write-behind queue, releases the handle, and returns
// the first deferred write error — the error barrier of close(2) on an
// NFS mount. NFSv2 itself is stateless, so no release RPC is issued.
func (f *File) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errClosed
	}
	f.closed = true
	f.mu.Unlock()
	if f.dc == nil {
		return f.commitUncached()
	}
	err := f.dc.sync(f.ctx)
	f.dc.release()
	return err
}

var (
	_ io.ReadWriteSeeker = (*File)(nil)
	_ io.ReaderAt        = (*File)(nil)
	_ io.WriterAt        = (*File)(nil)
	_ io.Closer          = (*File)(nil)
)
