package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"discfs/internal/nfs"
	"discfs/internal/vfs"
)

// File is a streaming handle on a remote DisCFS file. It implements
// io.Reader, io.Writer, io.Seeker, io.ReaderAt, io.WriterAt and
// io.Closer, chunking transfers into NFS READ/WRITE calls of at most
// nfs.MaxData bytes each, so arbitrarily large files move without ever
// being buffered whole on either side.
//
// The context passed to Open governs every RPC the File issues;
// canceling it aborts in-flight and future operations. A File is safe
// for concurrent use; the read/write cursor is shared, as with os.File,
// and positioned I/O (ReadAt/WriteAt) runs in parallel without touching
// the cursor.
type File struct {
	c    *Client
	ctx  context.Context
	h    vfs.Handle
	path string
	cred string // creator credential when Open created the file

	readable bool
	writable bool
	append_  bool

	size atomic.Int64 // last size observed from the server

	mu     sync.Mutex // guards the cursor and the closed flag
	pos    int64
	closed bool
}

// Open opens the file at path. flag is the standard os.O_* bitmask:
// os.O_RDONLY, os.O_WRONLY, os.O_RDWR, optionally combined with
// os.O_CREATE (create if missing, returning the creator credential),
// os.O_EXCL (with O_CREATE: fail if the file exists — best-effort, as
// NFSv2 CREATE has no exclusive mode), os.O_TRUNC (truncate on open)
// and os.O_APPEND (start the cursor at end-of-file).
//
// Open fails with an error matching ErrNotExist when the file is missing
// and os.O_CREATE is not set, and with ErrAccessDenied when credentials
// do not permit the requested access.
func (c *Client) Open(ctx context.Context, path string, flag int) (*File, error) {
	acc := flag & (os.O_RDONLY | os.O_WRONLY | os.O_RDWR)
	f := &File{
		c:        c,
		ctx:      ctx,
		path:     path,
		readable: acc == os.O_RDONLY || acc == os.O_RDWR,
		writable: acc == os.O_WRONLY || acc == os.O_RDWR,
		append_:  flag&os.O_APPEND != 0,
	}
	dir, name, err := c.splitPath(ctx, path)
	if err != nil {
		return nil, err
	}
	attr, err := c.nfs.Lookup(ctx, dir, name)
	switch {
	case err == nil:
		if flag&(os.O_CREATE|os.O_EXCL) == os.O_CREATE|os.O_EXCL {
			return nil, fmt.Errorf("core: open %s: %w", path, vfs.ErrExist)
		}
		if attr.Type == vfs.TypeDir {
			return nil, fmt.Errorf("core: open %s: %w", path, vfs.ErrIsDir)
		}
		if flag&os.O_TRUNC != 0 && f.writable {
			sa := nfs.NewSAttr()
			sa.Size = 0
			if attr, err = c.nfs.SetAttr(ctx, attr.Handle, sa); err != nil {
				return nil, c.wireError(err)
			}
		}
	case nfs.StatOf(err) == nfs.ErrNoEnt && flag&os.O_CREATE != 0:
		attr, f.cred, err = c.CreateWithCredential(ctx, dir, name, 0o644)
		if err != nil {
			return nil, err
		}
	default:
		return nil, c.wireError(err)
	}
	f.h = attr.Handle
	f.size.Store(int64(attr.Size))
	if f.append_ {
		f.pos = f.size.Load()
	}
	return f, nil
}

// Handle returns the file's NFS handle.
func (f *File) Handle() vfs.Handle { return f.h }

// Name returns the path the file was opened with.
func (f *File) Name() string { return f.path }

// Credential returns the creator credential text when Open created the
// file (os.O_CREATE on a missing path), and "" otherwise.
func (f *File) Credential() string { return f.cred }

// Stat fetches fresh attributes from the server.
func (f *File) Stat() (vfs.Attr, error) {
	if err := f.checkOpen(); err != nil {
		return vfs.Attr{}, err
	}
	attr, err := f.c.nfs.GetAttr(f.ctx, f.h)
	if err != nil {
		return vfs.Attr{}, f.c.wireError(err)
	}
	f.size.Store(int64(attr.Size))
	return attr, nil
}

var errClosed = fmt.Errorf("core: file already closed")

// Read implements io.Reader: one NFS READ of at most nfs.MaxData bytes
// per call, advancing the cursor.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, errClosed
	}
	if !f.readable {
		return 0, fmt.Errorf("core: %s not opened for reading: %w", f.path, vfs.ErrPerm)
	}
	n, err := f.readChunk(p, f.pos)
	f.pos += int64(n)
	return n, err
}

// ReadAt implements io.ReaderAt; it does not move the cursor, and
// concurrent positioned reads proceed in parallel. Unlike Read it loops
// until p is full or the file ends, per the io.ReaderAt contract.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	if !f.readable {
		return 0, fmt.Errorf("core: %s not opened for reading: %w", f.path, vfs.ErrPerm)
	}
	total := 0
	for total < len(p) {
		n, err := f.readChunk(p[total:], off+int64(total))
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// checkOpen reports errClosed once Close has run.
func (f *File) checkOpen() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errClosed
	}
	return nil
}

// readChunk issues a single READ of ≤ MaxData bytes at off.
func (f *File) readChunk(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if off > math.MaxUint32 {
		return 0, fmt.Errorf("core: offset %d beyond NFSv2 range: %w", off, vfs.ErrFBig)
	}
	count := uint32(len(p))
	if count > nfs.MaxData {
		count = nfs.MaxData
	}
	data, attr, err := f.c.nfs.Read(f.ctx, f.h, uint32(off), count)
	if err != nil {
		return 0, f.c.wireError(err)
	}
	f.size.Store(int64(attr.Size))
	n := copy(p, data)
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Write implements io.Writer, advancing the cursor. The full slice is
// written (in MaxData chunks) or an error is returned.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, errClosed
	}
	if f.append_ {
		f.pos = f.size.Load()
	}
	n, err := f.writeAt(p, f.pos)
	f.pos += int64(n)
	return n, err
}

// WriteAt implements io.WriterAt; it does not move the cursor, and
// concurrent positioned writes proceed in parallel.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	return f.writeAt(p, off)
}

// writeAt chunks p into WRITEs starting at off.
func (f *File) writeAt(p []byte, off int64) (int, error) {
	if !f.writable {
		return 0, fmt.Errorf("core: %s not opened for writing: %w", f.path, vfs.ErrPerm)
	}
	total := 0
	for total < len(p) {
		end := total + nfs.MaxData
		if end > len(p) {
			end = len(p)
		}
		at := off + int64(total)
		if at > math.MaxUint32 {
			return total, fmt.Errorf("core: offset %d beyond NFSv2 range: %w", at, vfs.ErrFBig)
		}
		attr, err := f.c.nfs.Write(f.ctx, f.h, uint32(at), p[total:end])
		if err != nil {
			return total, f.c.wireError(err)
		}
		f.size.Store(int64(attr.Size))
		total = end
	}
	return total, nil
}

// Seek implements io.Seeker. Seeking relative to the end fetches fresh
// attributes so concurrent writers are observed.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, errClosed
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		attr, err := f.c.nfs.GetAttr(f.ctx, f.h)
		if err != nil {
			return 0, f.c.wireError(err)
		}
		f.size.Store(int64(attr.Size))
		base = f.size.Load()
	default:
		return 0, fmt.Errorf("core: seek: invalid whence %d: %w", whence, vfs.ErrInval)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("core: seek to %d: %w", pos, vfs.ErrInval)
	}
	f.pos = pos
	return pos, nil
}

// Truncate resizes the file.
func (f *File) Truncate(size int64) error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	if !f.writable {
		return fmt.Errorf("core: %s not opened for writing: %w", f.path, vfs.ErrPerm)
	}
	if size < 0 || size > math.MaxUint32 {
		return fmt.Errorf("core: truncate to %d: %w", size, vfs.ErrInval)
	}
	sa := nfs.NewSAttr()
	sa.Size = uint32(size)
	attr, err := f.c.nfs.SetAttr(f.ctx, f.h, sa)
	if err != nil {
		return f.c.wireError(err)
	}
	f.size.Store(int64(attr.Size))
	return nil
}

// Close releases the handle. NFSv2 is stateless, so Close only marks the
// File unusable; it never fails with a transport error.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errClosed
	}
	f.closed = true
	return nil
}

var (
	_ io.ReadWriteSeeker = (*File)(nil)
	_ io.ReaderAt        = (*File)(nil)
	_ io.WriterAt        = (*File)(nil)
	_ io.Closer          = (*File)(nil)
)
