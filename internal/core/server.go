// Package core implements DisCFS itself: the credential-checked file
// server (the paper's contribution) and its client library.
//
// The server wraps any vfs.FS backing store (the prototype used the CFS
// daemon with encryption off) and enforces, on every NFS operation, a
// KeyNote compliance check binding the requesting principal — learned
// from the secure channel at attach time — to the file handle being
// accessed. Compliance values are the eight rwx permission combinations;
// their index is exactly the octal permission bitmask (§5 of the paper).
//
// As in the prototype, an attached filesystem appears with mode 000
// until credentials are submitted over RPC into a persistent KeyNote
// session; creating a file or directory issues the creator a credential
// with full access to the new object, which the owner can then delegate.
package core

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"discfs/internal/audit"
	"discfs/internal/cache"
	"discfs/internal/keynote"
	"discfs/internal/nfs"
	"discfs/internal/secchan"
	"discfs/internal/sunrpc"
	"discfs/internal/vfs"
)

// Values is the ordered compliance value set of DisCFS: the paper's
// partial order of 8 permission combinations. The index of a value in
// this list equals its rwx bitmask (X=1, W=2, R=4).
var Values = []string{"false", "X", "W", "WX", "R", "RX", "RW", "RWX"}

// Permission bits (octal rwx).
const (
	PermX uint8 = 1
	PermW uint8 = 2
	PermR uint8 = 4
)

// PermString renders a bitmask as its compliance value name.
func PermString(perm uint8) string { return Values[perm&7] }

// AppDomain is the KeyNote application domain of DisCFS queries.
const AppDomain = "DisCFS"

// anonymousPrincipal is used for peers with no authenticated identity
// (plain TCP transports); policy can grant it nothing or limited access.
const anonymousPrincipal = keynote.Principal("anonymous")

// ServerConfig parameterizes a DisCFS server.
type ServerConfig struct {
	// Backing is the filesystem to export (typically cfs over ffs).
	Backing vfs.FS
	// ServerKey is the administrator identity: it anchors the delegation
	// graph, signs credentials issued on create/mkdir, and authenticates
	// the secure channel. Required.
	ServerKey *keynote.KeyPair
	// PolicyText, if non-empty, is additional KeyNote policy installed
	// verbatim (Authorizer: "POLICY" assertions). The policy delegating
	// _MAX_TRUST to ServerKey is always installed; per the paper, "the
	// server would trust only the administrator's key".
	PolicyText string
	// Admins may invoke revocation and credential-listing procedures in
	// addition to ServerKey itself.
	Admins []keynote.Principal
	// CacheSize bounds the policy decision cache; the paper used 128.
	// Negative disables caching; 0 means 128.
	CacheSize int
	// CacheTTL bounds staleness of cached decisions under
	// time-dependent policies. 0 means 60s.
	CacheTTL time.Duration
	// Audit receives access decisions; nil allocates an in-memory log.
	Audit *audit.Log
	// Now injects a clock (tests, benchmarks); nil means time.Now.
	Now func() time.Time
}

// Server is a DisCFS server.
type Server struct {
	backing vfs.FS
	key     *keynote.KeyPair
	session *keynote.Session
	cache   *cache.LRU
	ttl     time.Duration
	audit   *audit.Log
	now     func() time.Time
	admins  map[keynote.Principal]bool

	queries atomic.Uint64 // full compliance checks (cache misses)

	// ancestry maps a handle to its containing directory, learned from
	// namespace traffic; it backs the PATH action attribute that gives
	// credentials subtree scope.
	ancMu    sync.RWMutex
	ancestry map[vfs.Handle]vfs.Handle

	rpc *sunrpc.Server
}

// NewServer builds a server from cfg.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Backing == nil {
		return nil, fmt.Errorf("core: no backing filesystem")
	}
	if cfg.ServerKey == nil {
		return nil, fmt.Errorf("core: no server key")
	}
	session, err := keynote.NewSession(Values)
	if err != nil {
		return nil, err
	}
	// Root of trust: POLICY delegates everything to the administrator
	// key (the paper's Figure 1, top edge).
	rootPolicy, err := keynote.NewPolicy(keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(cfg.ServerKey.Principal),
		Conditions: `app_domain == "` + AppDomain + `" -> _MAX_TRUST;`,
		Comment:    "root of trust: the administrator key",
	})
	if err != nil {
		return nil, err
	}
	if err := session.AddPolicy(rootPolicy); err != nil {
		return nil, err
	}
	if cfg.PolicyText != "" {
		if err := session.AddPolicyText(cfg.PolicyText); err != nil {
			return nil, err
		}
	}
	size := cfg.CacheSize
	if size == 0 {
		size = 128 // the paper's configuration
	}
	if size < 0 {
		size = 0
	}
	ttl := cfg.CacheTTL
	if ttl == 0 {
		ttl = time.Minute
	}
	log := cfg.Audit
	if log == nil {
		log = audit.New(1024, nil)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	admins := make(map[keynote.Principal]bool, len(cfg.Admins)+1)
	admins[cfg.ServerKey.Principal] = true
	for _, a := range cfg.Admins {
		admins[a] = true
	}
	s := &Server{
		backing:  cfg.Backing,
		key:      cfg.ServerKey,
		session:  session,
		cache:    cache.New(size),
		ttl:      ttl,
		audit:    log,
		now:      now,
		admins:   admins,
		ancestry: make(map[vfs.Handle]vfs.Handle),
		rpc:      sunrpc.NewServer(),
	}
	nfs.NewServer(s).RegisterAll(s.rpc)
	s.registerExt(s.rpc)
	return s, nil
}

// Session exposes the server's KeyNote session (tests, local tooling).
func (s *Server) Session() *keynote.Session { return s.session }

// Audit exposes the audit log.
func (s *Server) Audit() *audit.Log { return s.audit }

// Principal returns the server's administrator principal.
func (s *Server) Principal() keynote.Principal { return s.key.Principal }

// View implements nfs.Exporter: each peer sees the backing store through
// a policy-enforcing filter bound to its authenticated principal.
func (s *Server) View(peer string) (vfs.FS, error) {
	p := keynote.Principal(peer)
	if peer == "" {
		p = anonymousPrincipal
	}
	return &view{s: s, peer: p}, nil
}

// ---- ancestry tracking (PATH attribute) ----

// noteParent records that child lives in dir.
func (s *Server) noteParent(child, dir vfs.Handle) {
	s.ancMu.Lock()
	s.ancestry[child] = dir
	s.ancMu.Unlock()
}

// dropParent forgets a mapping (after remove).
func (s *Server) dropParent(child vfs.Handle) {
	s.ancMu.Lock()
	delete(s.ancestry, child)
	s.ancMu.Unlock()
}

// pathOf renders the inode ancestry of h as "/ino1/ino2/.../inoN/" with
// h's own inode last. Unknown ancestry yields just "/ino/".
func (s *Server) pathOf(h vfs.Handle) string {
	const maxDepth = 64
	chain := make([]uint64, 0, 8)
	chain = append(chain, h.Ino)
	s.ancMu.RLock()
	cur := h
	root := s.backing.Root()
	for i := 0; i < maxDepth; i++ {
		if cur == root {
			break
		}
		parent, ok := s.ancestry[cur]
		if !ok {
			break
		}
		chain = append(chain, parent.Ino)
		cur = parent
	}
	s.ancMu.RUnlock()
	// chain is leaf→root; render root→leaf.
	var b []byte
	b = append(b, '/')
	for i := len(chain) - 1; i >= 0; i-- {
		b = strconv.AppendUint(b, chain[i], 10)
		b = append(b, '/')
	}
	return string(b)
}

// ---- policy decisions ----

// decide computes (with caching) the permission bits granted to peer on
// handle h.
func (s *Server) decide(peer keynote.Principal, h vfs.Handle) (perm uint8, cached bool) {
	now := s.now()
	gen := s.session.Generation()
	key := string(peer) + "|" + strconv.FormatUint(h.Ino, 10) + "." + strconv.FormatUint(uint64(h.Gen), 10)
	if e, ok := s.cache.Get(key, gen, now); ok {
		return e.Perm, true
	}
	attrs := map[string]string{
		"app_domain": AppDomain,
		"HANDLE":     strconv.FormatUint(h.Ino, 10),
		"GENERATION": strconv.FormatUint(uint64(h.Gen), 10),
		"PATH":       s.pathOf(h),
		"peer":       string(peer),
		"hour":       strconv.Itoa(now.Hour()),
		"minute":     strconv.Itoa(now.Minute()),
		"weekday":    now.Weekday().String(),
		"now":        now.UTC().Format(time.RFC3339),
	}
	res, err := s.session.Query(attrs, peer)
	if err != nil {
		// Fail closed on evaluation errors.
		res = keynote.Result{Value: Values[0], Index: 0}
	}
	s.queries.Add(1)
	perm = uint8(res.Index) & 7
	s.cache.Put(key, cache.Entry{Perm: perm, Gen: gen, Expires: now.Add(s.ttl)})
	return perm, false
}

// check requires the given permission bits on h, appending to the audit
// log, and returns vfs.ErrPerm when denied.
func (s *Server) check(peer keynote.Principal, h vfs.Handle, need uint8, op, name string) error {
	perm, cached := s.decide(peer, h)
	allowed := perm&need == need
	s.audit.Append(audit.Record{
		Time: s.now(), Peer: string(peer), Op: op,
		Ino: h.Ino, Gen: h.Gen, Name: name,
		Value: PermString(perm), Allowed: allowed, Cached: cached,
	})
	if !allowed {
		return vfs.ErrPerm
	}
	return nil
}

// ---- credential issuance ----

// SubtreeConditions builds a Conditions body granting value on the object
// with inode ino and (when subtree) everything beneath it. extra, if
// non-empty, is ANDed in (e.g. a time bound).
func SubtreeConditions(ino uint64, value string, subtree bool, extra string) string {
	inoStr := strconv.FormatUint(ino, 10)
	target := `HANDLE == "` + inoStr + `"`
	if subtree {
		target = "(" + target + ` || PATH ~= "/` + inoStr + `/")`
	}
	cond := `app_domain == "` + AppDomain + `" && ` + target
	if extra != "" {
		cond += " && (" + extra + ")"
	}
	return cond + ` -> "` + value + `";`
}

// IssueCredential signs, with the server (administrator) key, a
// credential granting holder the given compliance value on ino
// (subtree-scoped), as the paper's create/mkdir procedures do.
func (s *Server) IssueCredential(holder keynote.Principal, ino uint64, value, comment string) (*keynote.Assertion, error) {
	cred, err := keynote.Sign(s.key, keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(holder),
		Conditions: SubtreeConditions(ino, value, true, ""),
		Comment:    comment,
	})
	if err != nil {
		return nil, err
	}
	// The issued credential joins the server's persistent session so the
	// holder can operate immediately.
	if err := s.session.AddCredential(cred); err != nil {
		return nil, err
	}
	return cred, nil
}

// ---- serving ----

// Authorize rejects connections from revoked keys at handshake time. The
// secchan sentinel tells the transport to report the revocation to the
// peer, where Dial surfaces it as ErrRevoked.
func (s *Server) Authorize(peer keynote.Principal) error {
	if s.session.Revoked(peer) {
		return secchan.ErrKeyRevoked
	}
	return nil
}

// Serve accepts secure-channel connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	secl := secchan.NewListener(ln, secchan.Config{
		Identity:  s.key,
		Authorize: s.Authorize,
	})
	return s.rpc.Serve(secl)
}

// ServePlain accepts unauthenticated plain-TCP connections on ln. Peers
// are the distinguished "anonymous" principal: they hold no key, cannot
// submit credentials usefully, and receive exactly what local policy
// grants the anonymous principal — the paper's future-work scenario of
// "untrusted users characteristic of the WWW" (§7), where browsers fetch
// public files without prior registration.
func (s *Server) ServePlain(ln net.Listener) error {
	return s.rpc.Serve(ln)
}

// AnonymousPrincipal is the principal assigned to unauthenticated peers;
// grant it access in PolicyText to publish files to the world.
const AnonymousPrincipal = anonymousPrincipal

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Start listens on a loopback port and serves in the background,
// returning the address (tests, examples).
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go s.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the server: every listener is closed (the RPC layer owns
// them once Serve is called) and in-flight connections drain.
func (s *Server) Close() error {
	return s.rpc.Close()
}

// Stats summarizes the policy engine's work, for monitoring and the
// micro-benchmarks.
type Stats struct {
	Queries     uint64 // full KeyNote evaluations (cache misses)
	CacheHits   uint64
	CacheMisses uint64
	Credentials int
	Decisions   uint64
	Denials     uint64
}

// Stats returns a snapshot.
func (s *Server) Stats() Stats {
	hits, misses := s.cache.Stats()
	total, denied := s.audit.Totals()
	return Stats{
		Queries:     s.queries.Load(),
		CacheHits:   hits,
		CacheMisses: misses,
		Credentials: len(s.session.Credentials()),
		Decisions:   total,
		Denials:     denied,
	}
}
