// Package core implements DisCFS itself: the credential-checked file
// server (the paper's contribution) and its client library.
//
// The server wraps any vfs.FS backing store (the prototype used the CFS
// daemon with encryption off) and enforces, on every NFS operation, a
// KeyNote compliance check binding the requesting principal — learned
// from the secure channel at attach time — to the file handle being
// accessed. Compliance values are the eight rwx permission combinations;
// their index is exactly the octal permission bitmask (§5 of the paper).
//
// As in the prototype, an attached filesystem appears with mode 000
// until credentials are submitted over RPC into a persistent KeyNote
// session; creating a file or directory issues the creator a credential
// with full access to the new object, which the owner can then delegate.
package core

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"discfs/internal/audit"
	"discfs/internal/bufpool"
	"discfs/internal/cache"
	"discfs/internal/dedup"
	"discfs/internal/keynote"
	"discfs/internal/limiter"
	"discfs/internal/metrics"
	"discfs/internal/nfs"
	"discfs/internal/secchan"
	"discfs/internal/sunrpc"
	"discfs/internal/vfs"
)

// Values is the ordered compliance value set of DisCFS: the paper's
// partial order of 8 permission combinations. The index of a value in
// this list equals its rwx bitmask (X=1, W=2, R=4).
var Values = []string{"false", "X", "W", "WX", "R", "RX", "RW", "RWX"}

// Permission bits (octal rwx).
const (
	PermX uint8 = 1
	PermW uint8 = 2
	PermR uint8 = 4
)

// PermString renders a bitmask as its compliance value name.
func PermString(perm uint8) string { return Values[perm&7] }

// AppDomain is the KeyNote application domain of DisCFS queries.
const AppDomain = "DisCFS"

// anonymousPrincipal is used for peers with no authenticated identity
// (plain TCP transports); policy can grant it nothing or limited access.
const anonymousPrincipal = keynote.Principal("anonymous")

// ServerConfig parameterizes a DisCFS server.
type ServerConfig struct {
	// Backing is the filesystem to export (typically cfs over ffs).
	Backing vfs.FS
	// ServerKey is the administrator identity: it anchors the delegation
	// graph, signs credentials issued on create/mkdir, and authenticates
	// the secure channel. Required.
	ServerKey *keynote.KeyPair
	// PolicyText, if non-empty, is additional KeyNote policy installed
	// verbatim (Authorizer: "POLICY" assertions). The policy delegating
	// _MAX_TRUST to ServerKey is always installed; per the paper, "the
	// server would trust only the administrator's key".
	PolicyText string
	// Admins may invoke revocation and credential-listing procedures in
	// addition to ServerKey itself.
	Admins []keynote.Principal
	// CacheSize bounds the policy decision cache; the paper used 128.
	// Negative disables caching; 0 means 128.
	CacheSize int
	// CacheTTL bounds staleness of cached decisions under
	// time-dependent policies. 0 means 60s.
	CacheTTL time.Duration
	// Audit receives access decisions; nil allocates an in-memory log.
	Audit *audit.Log
	// Now injects a clock (tests, benchmarks); nil means an internal
	// coarse clock (~0.5 ms granularity) that makes per-operation
	// timestamping free of a syscall-path time.Now per check.
	Now func() time.Time

	// WriteBehind enables server-side unstable writes: WRITE buffers
	// into a write-gathering queue and returns immediately; background
	// committers coalesce adjacent blocks into large backing writes; the
	// COMMIT procedure is the durability barrier (NFSv3 semantics with
	// verifier-based restart detection). Off by default.
	WriteBehind bool
	// WriteBehindQueue bounds the buffered dirty data in 8 KiB blocks
	// (writers throttle beyond it); 0 means 1024 (8 MiB).
	WriteBehindQueue int
	// Committers sizes the background committer pool; 0 means 2.
	Committers int

	// Dedup wraps Backing in the content-addressed deduplicating store
	// layer (internal/dedup): file data is split into content-defined
	// chunks indexed by SHA-256, each unique chunk is written to the
	// backing store exactly once, and duplicate WRITEs become pure index
	// mutations. Stacks *under* the write-gathering queue, so committers
	// hand whole coalesced runs to the chunker. The average chunk size
	// tracks the negotiated transfer size (MaxTransfer/8). If Backing is
	// already a *dedup.FS (the "+dedup" backend variants), that layer is
	// adopted instead of double-wrapping. Off by default.
	Dedup bool

	// MaxTransfer bounds the READ/WRITE payload this server grants
	// during per-connection transfer-size negotiation (and accepts on
	// the wire), in bytes. 0 means nfs.DefaultMaxTransfer (504 KiB, the
	// largest payload whose record fits the 512 KiB buffer-pool class);
	// values clamp to [nfs.MaxData, nfs.MaxTransferLimit]. Set to
	// nfs.MaxData to pin v2-era 8 KiB transfers. The write-gathering
	// run size follows it, so coalesced backing writes match what one
	// RPC can carry.
	MaxTransfer int

	// DirCursors bounds the server-side directory-cursor cache: the LRU
	// of listing snapshots that keeps READDIR/READDIRPLUS paging stable
	// under concurrent mutation. Each live cursor pins one directory
	// listing in memory; a walk whose cursor was evicted restarts
	// transparently. 0 means nfs.DefaultDirCursors (256).
	DirCursors int

	// LimitDefault applies per-principal admission control to every
	// data-plane NFS request: a token-bucket rate and an in-flight cap
	// keyed by the authenticated secure-channel principal. The zero
	// value disables limiting (unless LimitOverrides constrains
	// someone). Throttled requests fail with ErrThrottled on the
	// client, which should back off and retry.
	LimitDefault Limits
	// LimitOverrides assigns specific principals their own limits in
	// place of LimitDefault (raise a batch service, pin a noisy one).
	LimitOverrides map[keynote.Principal]Limits
	// LimitMaxWait bounds how long a request is shaped (delayed)
	// before being rejected; 0 means limiter.DefaultMaxWait.
	LimitMaxWait time.Duration

	// Peers lists the other servers of a federation ("host:port") for
	// the server-to-server revocation feed: revocations applied here
	// are pushed to every peer (capped exponential backoff,
	// anti-entropy replay on reconnect), so one admin action fences the
	// whole federation even when the admin's client cannot reach every
	// shard. The peers must accept this server's key as an admin
	// (federations typically share the admin key; otherwise
	// cross-register keys via Admins / discfsd -admins). Validated with
	// fed.ValidatePeers. Empty disables pushing — entries pushed BY
	// peers are always accepted.
	Peers []string
	// PeerSyncWait bounds the handshake-time anti-entropy gate: while
	// the feed is stale (a reachable peer not yet pulled from), a new
	// non-admin session waits up to this long for the sync before its
	// revocation check runs, so a server rejoining after a partition
	// converges before serving its next session. 0 means
	// DefaultPeerSyncWait; negative disables the gate. When every peer
	// is unreachable the gate releases after one failed dial attempt —
	// the server stays available under partition.
	PeerSyncWait time.Duration
}

// Limits configures one principal's admission budget (rate + in-flight
// cap); the zero value is unlimited.
type Limits = limiter.Limits

// coarseClock publishes wall-clock nanoseconds from a ticker goroutine;
// reading it is one atomic load. Audit timestamps are second-granular
// and cache TTLs minute-granular, so sub-millisecond staleness is
// harmless (the minute-boundary clamp in decideAt leaves a 1 ms guard
// band for it).
type coarseClock struct {
	ns   atomic.Int64
	done chan struct{}
	once sync.Once
}

func newCoarseClock(step time.Duration) *coarseClock {
	c := &coarseClock{done: make(chan struct{})}
	c.ns.Store(time.Now().UnixNano())
	go func() {
		t := time.NewTicker(step)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				c.ns.Store(now.UnixNano())
			case <-c.done:
				return
			}
		}
	}()
	return c
}

func (c *coarseClock) Now() time.Time { return time.Unix(0, c.ns.Load()) }

func (c *coarseClock) Stop() { c.once.Do(func() { close(c.done) }) }

// ancShards is the shard count of the ancestry and path-cache maps;
// power of two so a handle hash indexes with the top ancShardBits bits.
const (
	ancShardBits = 4
	ancShards    = 1 << ancShardBits
)

// ancShard is one slice of the namespace-ancestry state: the
// child→parent map that backs the PATH action attribute, plus cached
// rendered paths (validated against the server's path epoch).
type ancShard struct {
	mu     sync.RWMutex
	parent map[vfs.Handle]vfs.Handle
	path   map[vfs.Handle]pathEntry
}

// pathEntry is a rendered inode path stamped with the epoch it was
// computed under; rename/remove bump the epoch, invalidating every
// cached path at once.
type pathEntry struct {
	path  string
	epoch uint64
}

// Server is a DisCFS server.
type Server struct {
	backing vfs.FS
	// gather is the server-side write-behind layer (non-nil only with
	// ServerConfig.WriteBehind); backing points at it when enabled.
	gather *nfs.GatherFS
	// dedup is the content-addressed store layer (non-nil when the
	// server enabled it or adopted a pre-wrapped backing); it sits
	// between gather and the raw store. Teardown closes it — Close is
	// idempotent, so an owner that also closes a layer it supplied via
	// WithBacking is harmless.
	dedup    *dedup.FS
	key      *keynote.KeyPair
	session  *keynote.Session
	cache    *cache.Cache
	ttl      time.Duration
	audit    *audit.Log
	ownAudit bool // the server allocated the log and closes it
	now      func() time.Time
	clock    *coarseClock // non-nil when the server owns its clock
	admins   map[keynote.Principal]bool

	// ancestry maps a handle to its containing directory, learned from
	// namespace traffic; it backs the PATH action attribute that gives
	// credentials subtree scope. Sharded by handle hash so namespace
	// traffic from different principals never contends on one lock.
	anc       [ancShards]ancShard
	pathEpoch atomic.Uint64 // bumped on rename/remove; validates path cache

	rpc *sunrpc.Server
	// ns is the NFS protocol engine (kept for the directory-cursor
	// gauge and for tests to reach protocol-level knobs).
	ns *nfs.Server

	// reg is the operations-plane metrics registry every layer reports
	// through; met holds the hot-path handles into it (the former
	// ad-hoc Stats counters live here now, in exactly one place).
	reg *metrics.Registry
	met serverMetrics

	// lim is per-principal admission control; nil when unconfigured.
	lim *limiter.Limiter

	// feed is the server-to-server revocation feed. Always non-nil: a
	// server with no configured peers still accepts pushed entries and
	// keeps the log, it just pushes to nobody.
	feed     *revFeed
	peerWait time.Duration

	draining  atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// serverMetrics are the registry handles the request path touches.
type serverMetrics struct {
	queries     *metrics.Counter      // full KeyNote evaluations
	pathHits    *metrics.Counter      // handle→path renders served from cache
	pathMisses  *metrics.Counter      // handle→path renders walked
	procLatency *metrics.HistogramVec // NFS call latency by procedure
	procErrors  *metrics.CounterVec   // non-OK NFS replies by procedure
}

// NewServer builds a server from cfg.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Backing == nil {
		return nil, fmt.Errorf("core: no backing filesystem")
	}
	if cfg.ServerKey == nil {
		return nil, fmt.Errorf("core: no server key")
	}
	session, err := keynote.NewSession(Values)
	if err != nil {
		return nil, err
	}
	// The time attributes change between queries without a session
	// mutation; snapshots track whether any assertion depends on them so
	// decide can clamp cached-decision lifetimes to the minute boundary.
	session.SetVolatileAttributes("hour", "minute", "weekday", "now")
	// Root of trust: POLICY delegates everything to the administrator
	// key (the paper's Figure 1, top edge).
	rootPolicy, err := keynote.NewPolicy(keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(cfg.ServerKey.Principal),
		Conditions: `app_domain == "` + AppDomain + `" -> _MAX_TRUST;`,
		Comment:    "root of trust: the administrator key",
	})
	if err != nil {
		return nil, err
	}
	if err := session.AddPolicy(rootPolicy); err != nil {
		return nil, err
	}
	if cfg.PolicyText != "" {
		if err := session.AddPolicyText(cfg.PolicyText); err != nil {
			return nil, err
		}
	}
	size := cfg.CacheSize
	if size == 0 {
		size = 128 // the paper's configuration
	}
	if size < 0 {
		size = 0
	}
	ttl := cfg.CacheTTL
	if ttl == 0 {
		ttl = time.Minute
	}
	log := cfg.Audit
	if log == nil {
		log = audit.New(1024, nil)
	}
	now := cfg.Now
	var clk *coarseClock
	if now == nil {
		clk = newCoarseClock(500 * time.Microsecond)
		now = clk.Now
	}
	admins := make(map[keynote.Principal]bool, len(cfg.Admins)+1)
	admins[cfg.ServerKey.Principal] = true
	for _, a := range cfg.Admins {
		admins[a] = true
	}
	maxTransfer := nfs.ClampTransfer(cfg.MaxTransfer)
	if cfg.MaxTransfer == 0 {
		maxTransfer = nfs.DefaultMaxTransfer
	}
	backing := cfg.Backing
	dedupFS, _ := backing.(*dedup.FS)
	if cfg.Dedup && dedupFS == nil {
		var derr error
		dedupFS, derr = dedup.Wrap(backing,
			dedup.WithAvgChunkSize(int(maxTransfer)/8))
		if derr != nil {
			return nil, fmt.Errorf("core: dedup layer: %w", derr)
		}
		backing = dedupFS
	}
	var gather *nfs.GatherFS
	if cfg.WriteBehind {
		gather = nfs.NewGatherFS(backing, nfs.GatherConfig{
			QueueBlocks: cfg.WriteBehindQueue,
			Committers:  cfg.Committers,
			// Coalesced backing runs match the negotiated transfer, so a
			// full run is exactly what one large RPC carries.
			MaxRunBlocks: int(maxTransfer) / nfs.MaxData,
		})
		backing = gather
	}
	s := &Server{
		backing:  backing,
		gather:   gather,
		dedup:    dedupFS,
		key:      cfg.ServerKey,
		session:  session,
		cache:    cache.New(size),
		ttl:      ttl,
		audit:    log,
		ownAudit: cfg.Audit == nil,
		now:      now,
		clock:    clk,
		admins:   admins,
		rpc:      sunrpc.NewServer(),
	}
	for i := range s.anc {
		s.anc[i].parent = make(map[vfs.Handle]vfs.Handle)
		s.anc[i].path = make(map[vfs.Handle]pathEntry)
	}
	if len(cfg.LimitOverrides) > 0 || cfg.LimitDefault != (Limits{}) {
		over := make(map[string]limiter.Limits, len(cfg.LimitOverrides))
		for p, l := range cfg.LimitOverrides {
			over[string(p)] = l
		}
		s.lim = limiter.New(limiter.Config{
			Default:   cfg.LimitDefault,
			Overrides: over,
			MaxWait:   cfg.LimitMaxWait,
		})
	}
	feed, err := newRevFeed(s, cfg.Peers)
	if err != nil {
		return nil, err
	}
	s.feed = feed
	s.peerWait = cfg.PeerSyncWait
	if s.peerWait == 0 {
		s.peerWait = DefaultPeerSyncWait
	}
	ns := nfs.NewServer(s)
	s.ns = ns
	ns.SetMaxTransfer(int(maxTransfer))
	if cfg.DirCursors != 0 {
		ns.SetDirCursorCap(cfg.DirCursors)
	}
	ns.SetObserver(s.observeNFS)
	if s.lim != nil {
		ns.SetAdmit(s.admitNFS)
	}
	s.initMetrics()
	ns.RegisterAll(s.rpc)
	s.registerExt(s.rpc)
	s.feed.start()
	return s, nil
}

// initMetrics builds the operations-plane registry: the request path
// writes its own counters and histograms directly, while every existing
// component counter (decision cache, audit ring, write-gather queue,
// buffer pool, secure channel, RPC transport, limiter) is bridged in as
// a sampled-at-scrape func metric, so instrumenting them costs the hot
// path nothing.
func (s *Server) initMetrics() {
	r := metrics.NewRegistry()
	s.reg = r
	s.met = serverMetrics{
		queries:    r.Counter("discfs_policy_queries_total", "Full KeyNote compliance evaluations (decision-cache misses)."),
		pathHits:   r.Counter("discfs_path_cache_hits_total", "Handle-to-path renders served from the path cache."),
		pathMisses: r.Counter("discfs_path_cache_misses_total", "Handle-to-path renders that walked the ancestry map."),
		procLatency: r.HistogramVec("discfs_nfs_latency_seconds",
			"NFS call service latency by procedure.", "proc", metrics.DefLatencyBuckets),
		procErrors: r.CounterVec("discfs_nfs_errors_total",
			"Non-OK NFS replies by procedure (throttled replies count here as trylater).", "proc"),
	}
	r.CounterFunc("discfs_decision_cache_hits_total", "Policy decisions served from the sharded LRU.", func() uint64 {
		h, _ := s.cache.Stats()
		return h
	})
	r.CounterFunc("discfs_decision_cache_misses_total", "Policy decisions that missed the LRU.", func() uint64 {
		_, m := s.cache.Stats()
		return m
	})
	r.CounterFunc("discfs_decisions_total", "Access decisions appended to the audit log.", func() uint64 {
		t, _ := s.audit.Totals()
		return t
	})
	r.CounterFunc("discfs_denials_total", "Access decisions that denied the operation.", func() uint64 {
		_, d := s.audit.Totals()
		return d
	})
	r.GaugeFunc("discfs_audit_pending", "Audit mirror lines queued, not yet written.", func() float64 {
		return float64(s.audit.Pending())
	})
	r.CounterFunc("discfs_audit_dropped_total", "Audit mirror lines dropped at saturation.", func() uint64 {
		return s.audit.Dropped()
	})
	r.GaugeFunc("discfs_dir_cursors", "Live directory-listing cursors (paged READDIR walks in flight).", func() float64 {
		return float64(s.ns.DirCursorCount())
	})
	r.GaugeFunc("discfs_credentials", "Credentials loaded in the policy session.", func() float64 {
		return float64(s.session.Snapshot().NumCredentials())
	})
	r.GaugeFunc("discfs_policy_generation", "Policy-session generation (mutation count).", func() float64 {
		return float64(s.session.Snapshot().Generation())
	})
	if s.gather != nil {
		r.GaugeFunc("discfs_writegather_queue_bytes", "Dirty bytes buffered in the write-gathering queue.", func() float64 {
			return float64(s.gather.Stats().QueueDepth)
		})
		r.CounterFunc("discfs_writegather_writes_total", "WRITE RPCs absorbed by the write-gathering queue.", func() uint64 {
			return s.gather.Stats().WritesGathered
		})
		r.CounterFunc("discfs_writegather_backend_writes_total", "Coalesced writes issued to the backing store.", func() uint64 {
			return s.gather.Stats().BackendWrites
		})
		r.CounterFunc("discfs_writegather_commits_total", "COMMIT durability barriers served.", func() uint64 {
			return s.gather.Stats().Commits
		})
	}
	if s.dedup != nil {
		r.GaugeFunc("discfs_dedup_chunks", "Unique chunks held by the content-addressed store.", func() float64 {
			return float64(s.dedup.Stats().Chunks)
		})
		r.GaugeFunc("discfs_dedup_bytes_logical", "Bytes addressable through dedup manifests.", func() float64 {
			return float64(s.dedup.Stats().BytesLogical)
		})
		r.GaugeFunc("discfs_dedup_bytes_stored", "Bytes physically held in chunk files.", func() float64 {
			return float64(s.dedup.Stats().BytesStored)
		})
		r.CounterFunc("discfs_dedup_hits_total", "Chunk stores absorbed as pure index mutations (no data written).", func() uint64 {
			return s.dedup.Stats().Hits
		})
		r.CounterFunc("discfs_dedup_gc_reclaimed_total", "Zero-reference chunks reclaimed by the sweeper.", func() uint64 {
			return s.dedup.Stats().GCChunks
		})
	}
	r.GaugeFunc("discfs_bufpool_outstanding", "Pooled buffers currently checked out (gets minus puts, process-wide).", func() float64 {
		return float64(bufpool.Outstanding())
	})
	r.CounterFunc("discfs_secchan_handshakes_total", "Responder secure-channel handshakes attempted (process-wide).", func() uint64 {
		return secchan.ReadStats().Handshakes
	})
	r.CounterFunc("discfs_secchan_failures_total", "Secure-channel handshakes failed before authentication (process-wide).", func() uint64 {
		return secchan.ReadStats().Failures
	})
	r.CounterFunc("discfs_secchan_rejected_total", "Authenticated peers refused by authorization, including revoked keys (process-wide).", func() uint64 {
		return secchan.ReadStats().Rejected
	})
	r.GaugeFunc("discfs_secchan_active_sessions", "Established secure-channel sessions now open (process-wide).", func() float64 {
		return float64(secchan.ReadStats().Active)
	})
	r.CounterFunc("discfs_datacache_hits_total", "Client data-cache block reads served locally (process-wide).", func() uint64 {
		return dcHits.Load()
	})
	r.CounterFunc("discfs_datacache_misses_total", "Client data-cache block reads fetched from a server (process-wide).", func() uint64 {
		return dcMisses.Load()
	})
	r.CounterFunc("discfs_redials_total", "Lost client connections transparently re-established (process-wide).", RedialsTotal)
	r.CounterFunc("discfs_rpc_requests_total", "RPC records received for dispatch.", func() uint64 {
		return s.rpc.Stats().Requests
	})
	r.CounterFunc("discfs_rpc_queue_full_total", "RPC records that found the in-flight cap saturated.", func() uint64 {
		return s.rpc.Stats().QueueFull
	})
	r.CounterFunc("discfs_rpc_busy_total", "RPC records refused with ServerBusy (saturation or drain).", func() uint64 {
		return s.rpc.Stats().Busy
	})
	r.GaugeFunc("discfs_rpc_inflight", "RPC handlers executing right now.", func() float64 {
		return float64(s.rpc.Stats().InFlight)
	})
	if s.lim != nil {
		r.CounterFunc("discfs_throttled_rate_total", "Requests rejected by a principal's token bucket.", func() uint64 {
			return s.lim.Stats().ThrottledRate
		})
		r.CounterFunc("discfs_throttled_concurrency_total", "Requests rejected by a principal's in-flight cap.", func() uint64 {
			return s.lim.Stats().ThrottledConcurrency
		})
		r.GaugeFunc("discfs_limited_principals", "Principals with live admission-control state.", func() float64 {
			return float64(s.lim.Principals())
		})
	}
	r.GaugeFunc("discfs_revocation_feed_lag", "Revocation log entries not yet acknowledged by the slowest feed peer (unsynced peers owe the whole log).", func() float64 {
		return float64(s.feed.Lag())
	})
	r.CounterFunc("discfs_revocations_propagated_total", "Revocation feed entries delivered to peer servers.", func() uint64 {
		return s.feed.propagated.Load()
	})
	r.CounterFunc("discfs_revocations_applied_total", "Revocation feed entries received from peer servers and applied.", func() uint64 {
		return s.feed.applied.Load()
	})
	r.GaugeFunc("discfs_draining", "1 while the server is draining (refusing new work), else 0.", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
}

// Metrics exposes the server's registry (scrape endpoint, tests).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// observeNFS is the nfs-layer observer: one histogram sample and, for
// non-OK replies, one error count per call, labeled by procedure.
func (s *Server) observeNFS(proc uint32, st nfs.Stat, d time.Duration) {
	name := nfs.ProcName(proc)
	s.met.procLatency.With(name).Observe(d.Seconds())
	if st != nfs.OK {
		s.met.procErrors.With(name).Inc()
	}
}

// admitNFS is the nfs-layer admission hook: the authenticated peer
// buys a slot from its limiter bucket or the call is refused (the nfs
// layer replies ErrTryLater, which clients surface as ErrThrottled).
func (s *Server) admitNFS(peer string, proc uint32) (func(), error) {
	if peer == "" {
		peer = string(anonymousPrincipal)
	}
	return s.lim.Acquire(peer)
}

// NFSLatency returns the merged (all procedures) NFS latency snapshot;
// quantiles come from its Quantile method (soak harness, monitoring).
func (s *Server) NFSLatency() metrics.HistogramSnapshot {
	return s.met.procLatency.Merged()
}

// Throttled returns how many requests admission control rejected,
// split by axis (token-bucket rate, in-flight cap). Zero when limiting
// is unconfigured.
func (s *Server) Throttled() (rate, concurrency uint64) {
	if s.lim == nil {
		return 0, 0
	}
	st := s.lim.Stats()
	return st.ThrottledRate, st.ThrottledConcurrency
}

// Session exposes the server's KeyNote session (tests, local tooling).
func (s *Server) Session() *keynote.Session { return s.session }

// Audit exposes the audit log.
func (s *Server) Audit() *audit.Log { return s.audit }

// Principal returns the server's administrator principal.
func (s *Server) Principal() keynote.Principal { return s.key.Principal }

// View implements nfs.Exporter: each peer sees the backing store through
// a policy-enforcing filter bound to its authenticated principal.
func (s *Server) View(peer string) (vfs.FS, error) {
	p := keynote.Principal(peer)
	if peer == "" {
		p = anonymousPrincipal
	}
	return &view{s: s, peer: p}, nil
}

// ---- ancestry tracking (PATH attribute) ----

// ancShard selects the shard holding h's ancestry entry.
func (s *Server) ancShard(h vfs.Handle) *ancShard {
	// Fibonacci hashing; the top bits index the shard array.
	return &s.anc[(h.Ino+uint64(h.Gen)<<40)*0x9e3779b97f4a7c15>>(64-ancShardBits)]
}

// invalidatePaths bumps the path epoch, invalidating every cached path
// and (because the epoch participates in decision validity) every
// cached decision. Only operations that actually change an existing
// object's path call it — rename, and rmdir as defense in depth — so
// read traffic and leaf-file removal never flush the caches.
func (s *Server) invalidatePaths() { s.pathEpoch.Add(1) }

// noteParent records that child lives in dir. Namespace reads (lookup,
// readdir) call this on every entry, so the already-known case takes
// only a shard read lock. A remap — a different parent observed, which
// a rename's own epoch bump already accounts for, or a hard link seen
// through another directory — updates the map and drops the child's
// cached path (last observation wins, as with the prototype's PATH
// attribute) without touching the global epoch.
func (s *Server) noteParent(child, dir vfs.Handle) {
	sh := s.ancShard(child)
	sh.mu.RLock()
	cur, ok := sh.parent[child]
	sh.mu.RUnlock()
	if ok && cur == dir {
		return
	}
	sh.mu.Lock()
	sh.parent[child] = dir
	delete(sh.path, child)
	sh.mu.Unlock()
}

// dropParent forgets a mapping (after remove/rmdir). Shard-local: a
// leaf's disappearance cannot change any other handle's path, so no
// global invalidation happens here.
func (s *Server) dropParent(child vfs.Handle) {
	sh := s.ancShard(child)
	sh.mu.Lock()
	delete(sh.parent, child)
	delete(sh.path, child)
	sh.mu.Unlock()
}

// pathOf renders the inode ancestry of h as "/ino1/ino2/.../inoN/" with
// h's own inode last. Unknown ancestry yields just "/ino/". Rendered
// paths whose chain reaches the root are cached per handle and reused
// until a rename or remove bumps the path epoch; incomplete chains (the
// parent is not yet known) are not cached, so learning more ancestry
// takes effect on the very next query.
func (s *Server) pathOf(h vfs.Handle) string {
	epoch := s.pathEpoch.Load()
	hsh := s.ancShard(h)
	hsh.mu.RLock()
	pe, ok := hsh.path[h]
	hsh.mu.RUnlock()
	if ok && pe.epoch == epoch {
		s.met.pathHits.Inc()
		return pe.path
	}
	s.met.pathMisses.Inc()
	const maxDepth = 64
	chain := make([]uint64, 0, 8)
	chain = append(chain, h.Ino)
	root := s.backing.Root()
	cur := h
	complete := cur == root
	for i := 0; i < maxDepth && !complete; i++ {
		sh := s.ancShard(cur)
		sh.mu.RLock()
		parent, ok := sh.parent[cur]
		sh.mu.RUnlock()
		if !ok {
			break
		}
		chain = append(chain, parent.Ino)
		cur = parent
		complete = cur == root
	}
	// chain is leaf→root; render root→leaf.
	var b []byte
	b = append(b, '/')
	for i := len(chain) - 1; i >= 0; i-- {
		b = strconv.AppendUint(b, chain[i], 10)
		b = append(b, '/')
	}
	path := string(b)
	if complete {
		hsh.mu.Lock()
		hsh.path[h] = pathEntry{path: path, epoch: epoch}
		hsh.mu.Unlock()
	}
	return path
}

// ---- policy decisions ----

// decide computes (with caching) the permission bits granted to peer on
// handle h.
func (s *Server) decide(peer keynote.Principal, h vfs.Handle) (perm uint8, cached bool) {
	return s.decideAt(peer, h, s.now())
}

// decideAt is decide with the caller's clock reading. The whole decision
// runs against one immutable session snapshot: the compliance query
// takes no lock, and the cache entry is stamped with the validity
// (generation + path epoch) read before the query ran — a revocation or
// rename landing mid-decision bumps the live validity past it, so the
// entry can never satisfy a post-revocation lookup.
func (s *Server) decideAt(peer keynote.Principal, h vfs.Handle, now time.Time) (perm uint8, cached bool) {
	snap := s.session.Snapshot()
	// Cached decisions are valid for one (session generation, path
	// epoch) pair: credential changes AND namespace changes (a rename
	// can move a file out of a subtree-scoped grant) both invalidate.
	// Both counters are monotonic, so their sum is too.
	validity := snap.Generation() + s.pathEpoch.Load()
	key := cache.Key{Peer: string(peer), Ino: h.Ino, Gen: h.Gen}
	if e, ok := s.cache.Get(key, validity, now); ok {
		return e.Perm, true
	}
	attrs := map[string]string{
		"app_domain": AppDomain,
		"HANDLE":     strconv.FormatUint(h.Ino, 10),
		"GENERATION": strconv.FormatUint(uint64(h.Gen), 10),
		"PATH":       s.pathOf(h),
		"peer":       string(peer),
		"hour":       strconv.Itoa(now.Hour()),
		"minute":     strconv.Itoa(now.Minute()),
		"weekday":    now.Weekday().String(),
		"now":        now.UTC().Format(time.RFC3339),
	}
	res, err := snap.Query(attrs, peer)
	if err != nil {
		// Fail closed on evaluation errors.
		res = keynote.Result{Value: Values[0], Index: 0}
	}
	s.met.queries.Inc()
	perm = uint8(res.Index) & 7
	expires := now.Add(s.ttl)
	if snap.Volatile() {
		// Some assertion tests hour/minute/weekday/now: a grant valid at
		// 11:59 must not be served from cache at 12:00, however long the
		// TTL. Clamp to just short of the next minute boundary (the
		// granularity of the time attributes) so the first decision in
		// the new minute re-evaluates; the 1 ms guard band covers the
		// coarse clock's staleness.
		if boundary := now.Truncate(time.Minute).Add(time.Minute - time.Millisecond); boundary.Before(expires) {
			expires = boundary
		}
	}
	// Stamp with the validity computed before the query: if a revocation
	// or rename landed mid-decision, the live validity has moved past
	// this value and the entry can never satisfy a later Get.
	s.cache.Put(key, cache.Entry{Perm: perm, Gen: validity, Expires: expires})
	return perm, false
}

// check requires the given permission bits on h, appending to the audit
// log, and returns vfs.ErrPerm when denied. The audit append is
// asynchronous — the check path never blocks on log I/O.
func (s *Server) check(peer keynote.Principal, h vfs.Handle, need uint8, op, name string) error {
	now := s.now()
	perm, cached := s.decideAt(peer, h, now)
	allowed := perm&need == need
	s.audit.Append(audit.Record{
		Time: now, Peer: string(peer), Op: op,
		Ino: h.Ino, Gen: h.Gen, Name: name,
		Value: PermString(perm), Allowed: allowed, Cached: cached,
	})
	if !allowed {
		return vfs.ErrPerm
	}
	return nil
}

// Check runs the full per-operation authorization path — cached decision
// plus audit record — requiring the given permission bits on h. It is
// the entry point the per-peer views use, exported for benchmarks and
// local tooling that exercise the server's check path without RPC.
func (s *Server) Check(peer keynote.Principal, h vfs.Handle, need uint8, op string) error {
	return s.check(peer, h, need, op, "")
}

// ---- credential issuance ----

// SubtreeConditions builds a Conditions body granting value on the object
// with inode ino and (when subtree) everything beneath it. extra, if
// non-empty, is ANDed in (e.g. a time bound).
func SubtreeConditions(ino uint64, value string, subtree bool, extra string) string {
	inoStr := strconv.FormatUint(ino, 10)
	target := `HANDLE == "` + inoStr + `"`
	if subtree {
		target = "(" + target + ` || PATH ~= "/` + inoStr + `/")`
	}
	cond := `app_domain == "` + AppDomain + `" && ` + target
	if extra != "" {
		cond += " && (" + extra + ")"
	}
	return cond + ` -> "` + value + `";`
}

// IssueCredential signs, with the server (administrator) key, a
// credential granting holder the given compliance value on ino
// (subtree-scoped), as the paper's create/mkdir procedures do.
func (s *Server) IssueCredential(holder keynote.Principal, ino uint64, value, comment string) (*keynote.Assertion, error) {
	cred, err := keynote.Sign(s.key, keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(holder),
		Conditions: SubtreeConditions(ino, value, true, ""),
		Comment:    comment,
	})
	if err != nil {
		return nil, err
	}
	// The issued credential joins the server's persistent session so the
	// holder can operate immediately.
	if err := s.session.AddCredential(cred); err != nil {
		return nil, err
	}
	return cred, nil
}

// ---- serving ----

// Authorize rejects connections from revoked keys at handshake time. The
// secchan sentinel tells the transport to report the revocation to the
// peer, where Dial surfaces it as ErrRevoked.
//
// When the revocation feed is stale — a peer server is reachable but
// this server has not yet pulled its log, the state a server is in just
// after rejoining a partition — non-admin handshakes first wait (up to
// PeerSyncWait) for anti-entropy, so a principal revoked while this
// server was down is refused before its first post-reconnect session
// rather than after. Admins skip the gate: peer servers pushing feed
// entries authenticate as admins, and gating them would deadlock the
// very sync the gate waits for.
func (s *Server) Authorize(peer keynote.Principal) error {
	if !s.admins[peer] {
		s.feed.waitFresh(s.peerWait)
	}
	if s.session.Revoked(peer) {
		return secchan.ErrKeyRevoked
	}
	return nil
}

// RevocationFeed reports the feed's replication counters: lag (log
// entries the slowest peer has not acknowledged), propagated (entries
// delivered to peers), applied (entries received from peers).
func (s *Server) RevocationFeed() (lag, propagated, applied uint64) {
	return s.feed.Lag(), s.feed.propagated.Load(), s.feed.applied.Load()
}

// Serve accepts secure-channel connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	secl := secchan.NewListener(ln, secchan.Config{
		Identity:  s.key,
		Authorize: s.Authorize,
	})
	return s.rpc.Serve(secl)
}

// ServePlain accepts unauthenticated plain-TCP connections on ln. Peers
// are the distinguished "anonymous" principal: they hold no key, cannot
// submit credentials usefully, and receive exactly what local policy
// grants the anonymous principal — the paper's future-work scenario of
// "untrusted users characteristic of the WWW" (§7), where browsers fetch
// public files without prior registration.
func (s *Server) ServePlain(ln net.Listener) error {
	return s.rpc.Serve(ln)
}

// AnonymousPrincipal is the principal assigned to unauthenticated peers;
// grant it access in PolicyText to publish files to the world.
const AnonymousPrincipal = anonymousPrincipal

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Start listens on a loopback port and serves in the background,
// returning the address (tests, examples).
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go s.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the server: every listener is closed (the RPC layer owns
// them once Serve is called), in-flight connections drain, and the
// audit log's writer queue is drained (closed when the server allocated
// the log, flushed when the caller supplied it).
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.teardown(s.rpc.Close())
	})
	return s.closeErr
}

// DefaultDrainTimeout bounds Shutdown when its context has no deadline.
const DefaultDrainTimeout = 10 * time.Second

// Shutdown drains the server gracefully: listeners close and new RPCs
// are fenced off (refused with ServerBusy so clients see backpressure,
// not a hang), in-flight calls run to completion and deliver their
// replies, then buffered unstable writes flush to the backing store and
// the audit queue drains. The context deadline bounds the in-flight
// wait; past it, remaining connections are cut and Shutdown returns the
// drain error — but buffered writes and audit records still flush, so a
// forced drain loses no acknowledged write.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		timeout := DefaultDrainTimeout
		if dl, ok := ctx.Deadline(); ok {
			timeout = time.Until(dl)
		}
		s.closeErr = s.teardown(s.rpc.Drain(timeout))
	})
	return s.closeErr
}

// Draining reports whether Shutdown has begun; the health endpoint uses
// it to fail readiness while the server winds down.
func (s *Server) Draining() bool { return s.draining.Load() }

// teardown releases everything behind the RPC layer, after new traffic
// is fenced off: the coarse clock, the write-gather queue (flushing
// acknowledged-unstable data to the backing store), and the audit ring.
func (s *Server) teardown(err error) error {
	if s.feed != nil {
		s.feed.Close()
	}
	if s.clock != nil {
		s.clock.Stop()
	}
	if s.gather != nil {
		// Drain buffered writes to the backing store now that no new
		// traffic can arrive.
		if gerr := s.gather.Close(); gerr != nil && err == nil {
			err = gerr
		}
	}
	if s.dedup != nil {
		// After the gather drain: manifests flush and the final sweep
		// compacts the chunk namespace.
		if derr := s.dedup.Close(); derr != nil && err == nil {
			err = derr
		}
	}
	var aerr error
	if s.ownAudit {
		aerr = s.audit.Close()
	} else {
		aerr = s.audit.Flush()
	}
	if err == nil {
		err = aerr
	}
	return err
}

// Stats summarizes the policy engine's work, for monitoring and the
// micro-benchmarks.
type Stats struct {
	Queries     uint64 // full KeyNote evaluations (cache misses)
	CacheHits   uint64
	CacheMisses uint64
	Credentials int
	Decisions   uint64
	Denials     uint64

	Generation      uint64 // policy-session generation (mutation count)
	AuditPending    int    // audit mirror lines queued, not yet written
	AuditDropped    uint64 // audit mirror lines dropped at saturation
	PathCacheHits   uint64 // handle→path resolutions served from cache
	PathCacheMisses uint64 // handle→path resolutions walked

	// Server write-behind (zero when ServerConfig.WriteBehind is off).
	WriteQueueDepth int    // bytes buffered in the write-gathering queue
	WritesGathered  uint64 // WRITE RPCs absorbed by the queue
	BackendWrites   uint64 // coalesced writes issued to the backing store
	Commits         uint64 // COMMIT durability barriers served

	// Content-addressed store (zero when ServerConfig.Dedup is off).
	DedupChunks       int64  // unique chunks held
	DedupBytesLogical int64  // bytes addressable through manifests
	DedupBytesStored  int64  // bytes physically stored in chunk files
	DedupHits         uint64 // chunk stores absorbed as index mutations
	DedupGCReclaimed  uint64 // zero-reference chunks swept
}

// Stats returns a snapshot.
func (s *Server) Stats() Stats {
	snap := s.session.Snapshot()
	hits, misses := s.cache.Stats()
	total, denied := s.audit.Totals()
	var gst nfs.GatherStats
	if s.gather != nil {
		gst = s.gather.Stats()
	}
	var dst dedup.Stats
	if s.dedup != nil {
		dst = s.dedup.Stats()
	}
	return Stats{
		WriteQueueDepth: gst.QueueDepth,
		WritesGathered:  gst.WritesGathered,
		BackendWrites:   gst.BackendWrites,
		Commits:         gst.Commits,

		DedupChunks:       dst.Chunks,
		DedupBytesLogical: dst.BytesLogical,
		DedupBytesStored:  dst.BytesStored,
		DedupHits:         dst.Hits,
		DedupGCReclaimed:  dst.GCChunks,

		Queries:         s.met.queries.Value(),
		CacheHits:       hits,
		CacheMisses:     misses,
		Credentials:     snap.NumCredentials(),
		Decisions:       total,
		Denials:         denied,
		Generation:      snap.Generation(),
		AuditPending:    s.audit.Pending(),
		AuditDropped:    s.audit.Dropped(),
		PathCacheHits:   s.met.pathHits.Value(),
		PathCacheMisses: s.met.pathMisses.Value(),
	}
}
