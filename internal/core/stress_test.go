package core

// Concurrency stress harness for the client-side data cache: many
// goroutines hammer one Client (and two Clients hammer one server) with
// mixed Read/Write/Seek/Sync/Close ops while an in-memory model tracks
// what every byte must be. Run with -race (the CI race job does).

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"

	"discfs/internal/keynote"
)

// regionSize is deliberately not block-aligned, so adjacent workers
// share cache blocks and every write exercises the read-modify-write
// and partial-extent paths.
const regionSize = 12345

// fillPattern writes a deterministic byte pattern for (worker, version)
// into dst.
func fillPattern(dst []byte, worker, version, off int) {
	for i := range dst {
		dst[i] = byte(worker*31 + version*7 + off + i)
	}
}

// stressWorker drives one region of the shared file through its own
// File handle, checking every read against model (the region's current
// expected content, updated in place — it carries across rounds).
// Within a worker operations are sequential, and regions are disjoint,
// so the model is exact despite cross-worker concurrency.
func stressWorker(c *Client, path string, worker, ops int, seed int64, model []byte) error {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	base := int64(worker * regionSize)
	version := 0

	f, err := c.Open(ctx, path, os.O_RDWR)
	if err != nil {
		return fmt.Errorf("worker %d: open: %w", worker, err)
	}
	defer func() {
		if f != nil {
			f.Close()
		}
	}()

	for op := 0; op < ops; op++ {
		switch k := rng.Intn(10); {
		case k < 4: // positioned write of a random span
			off := rng.Intn(regionSize)
			n := rng.Intn(regionSize-off)/4 + 1
			version++
			fillPattern(model[off:off+n], worker, version, off)
			if _, err := f.WriteAt(model[off:off+n], base+int64(off)); err != nil {
				return fmt.Errorf("worker %d op %d: WriteAt: %w", worker, op, err)
			}
		case k < 7: // positioned read-back of a random span
			off := rng.Intn(regionSize)
			n := rng.Intn(regionSize-off) + 1
			buf := make([]byte, n)
			m, err := f.ReadAt(buf, base+int64(off))
			if err != nil && err != io.EOF {
				return fmt.Errorf("worker %d op %d: ReadAt: %w", worker, op, err)
			}
			// Bytes past the current end-of-file read short; what did
			// arrive must match the model exactly (read-your-writes).
			if !bytes.Equal(buf[:m], model[off:off+m]) {
				d := 0
				for d < m && buf[d] == model[off+d] {
					d++
				}
				abs := int(base) + off + d
				return fmt.Errorf("worker %d op %d: ReadAt(%d,%d) mismatch at region byte %d (abs %d, block %d): got %d want %d",
					worker, op, off, n, off+d, abs, abs/8192, buf[d], model[off+d])
			}
		case k < 8: // cursor I/O: seek into the region, write then read back
			off := rng.Intn(regionSize - 64)
			if _, err := f.Seek(base+int64(off), io.SeekStart); err != nil {
				return fmt.Errorf("worker %d op %d: Seek: %w", worker, op, err)
			}
			version++
			fillPattern(model[off:off+32], worker, version, off)
			if _, err := f.Write(model[off : off+32]); err != nil {
				return fmt.Errorf("worker %d op %d: Write: %w", worker, op, err)
			}
			if _, err := f.Seek(-32, io.SeekCurrent); err != nil {
				return fmt.Errorf("worker %d op %d: Seek back: %w", worker, op, err)
			}
			buf := make([]byte, 32)
			if _, err := io.ReadFull(f, buf); err != nil {
				return fmt.Errorf("worker %d op %d: Read: %w", worker, op, err)
			}
			if !bytes.Equal(buf, model[off:off+32]) {
				return fmt.Errorf("worker %d op %d: cursor read mismatch", worker, op)
			}
		case k < 9: // barrier
			if err := f.Sync(); err != nil {
				return fmt.Errorf("worker %d op %d: Sync: %w", worker, op, err)
			}
		default: // close and reopen (close-to-open within one client)
			if err := f.Close(); err != nil {
				return fmt.Errorf("worker %d op %d: Close: %w", worker, op, err)
			}
			f, err = c.Open(ctx, path, os.O_RDWR)
			if err != nil {
				return fmt.Errorf("worker %d op %d: reopen: %w", worker, op, err)
			}
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("worker %d: final close: %w", worker, err)
	}
	f = nil
	return nil
}

// runWorkers fans stressWorker out over the regions [first, first+n).
func runWorkers(t *testing.T, c *Client, path string, first, n, ops int, seedBase int64, models [][]byte) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		w := first + i
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := stressWorker(c, path, w, ops, seedBase+int64(w), models[w]); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// verifyRegions opens the file on c and checks the regions
// [first, first+len(models)) against their models.
func verifyRegions(t *testing.T, c *Client, path string, first int, models [][]byte) {
	t.Helper()
	ctx := context.Background()
	f, err := c.Open(ctx, path, os.O_RDONLY)
	if err != nil {
		t.Fatalf("verify open: %v", err)
	}
	defer f.Close()
	for i, model := range models {
		w := first + i
		got := make([]byte, len(model))
		n, err := f.ReadAt(got, int64(w*regionSize))
		if err != nil && err != io.EOF {
			t.Fatalf("verify region %d: %v", w, err)
		}
		// The file may end inside the last written region; unread tail
		// bytes must then be zero in the model.
		if !bytes.Equal(got[:n], model[:n]) {
			d := 0
			for d < n && got[d] == model[d] {
				d++
			}
			t.Fatalf("region %d differs at byte %d: got %d want %d", w, d, got[d], model[d])
		}
		for _, b := range model[n:] {
			if b != 0 {
				t.Fatalf("region %d: model has data past EOF", w)
			}
		}
	}
}

// stressModes are the server configurations every stress test runs
// under: classic synchronous writes, the write-behind pipeline, and
// write-behind over the content-addressed dedup store (whose chunker,
// refcounting and open-chunk tail buffer must survive the same
// concurrent read-modify-write traffic).
var stressModes = []struct {
	name      string
	wb, dedup bool
}{
	{"syncWrites", false, false},
	{"serverWriteBehind", true, false},
	{"serverWriteBehindDedup", true, true},
}

func stressServer(t *testing.T, wb, dedup bool) string {
	t.Helper()
	serverKey := keynote.DeterministicKey("stress-admin")
	_, addr := testServer(t, ServerConfig{ServerKey: serverKey, WriteBehind: wb, Dedup: dedup})
	return addr
}

func newModels(n int) [][]byte {
	models := make([][]byte, n)
	for i := range models {
		models[i] = make([]byte, regionSize)
	}
	return models
}

// TestStressSingleClient hammers one cached client with concurrent
// mixed operations from eight workers sharing one file (and therefore
// one handle cache), then verifies every byte — through the writing
// client and through a second, independent client after close. It runs
// twice: against the classic synchronous-write server and against the
// server-side write-behind pipeline (unstable WRITE + COMMIT).
func TestStressSingleClient(t *testing.T) {
	for _, mode := range stressModes {
		t.Run(mode.name, func(t *testing.T) {
			ctx := context.Background()
			addr := stressServer(t, mode.wb, mode.dedup)
			c := dialAs(t, addr, "stress-admin")

			const workers, ops = 8, 150
			if _, _, err := c.WriteFile(ctx, "/stress.dat", nil); err != nil {
				t.Fatal(err)
			}
			models := newModels(workers)
			runWorkers(t, c, "/stress.dat", 0, workers, ops, 1000, models)

			// Within the writing client the cache must agree...
			verifyRegions(t, c, "/stress.dat", 0, models)
			// ...and a fresh client sees the same bytes after close-to-open.
			c2 := dialAs(t, addr, "stress-admin")
			verifyRegions(t, c2, "/stress.dat", 0, models)
		})
	}
}

// TestStressTwoClientsSharedServer alternates two clients over one
// shared file in write-close / open-verify rounds: everything a client
// wrote and closed must be visible to the other client's next open
// (close-to-open across clients), with both clients running concurrent
// workers internally.
func TestStressTwoClientsSharedServer(t *testing.T) {
	for _, mode := range stressModes {
		t.Run(mode.name, func(t *testing.T) {
			ctx := context.Background()
			addr := stressServer(t, mode.wb, mode.dedup)
			a := dialAs(t, addr, "stress-admin")
			b := dialAs(t, addr, "stress-admin")

			const perClient, ops, rounds = 4, 60, 3
			if _, _, err := a.WriteFile(ctx, "/shared.dat", nil); err != nil {
				t.Fatal(err)
			}
			models := newModels(2 * perClient)

			for round := 0; round < rounds; round++ {
				// Client A owns regions 0..3, client B regions 4..7. New seeds
				// each round rewrite random spans over the surviving content.
				runWorkers(t, a, "/shared.dat", 0, perClient, ops, int64(9000+100*round), models)
				runWorkers(t, b, "/shared.dat", perClient, perClient, ops, int64(9500+100*round), models)

				// Cross-client visibility after close: B checks A's half, A
				// checks B's half, and a third client checks everything.
				verifyRegions(t, b, "/shared.dat", 0, models[:perClient])
				verifyRegions(t, a, "/shared.dat", perClient, models[perClient:])
				c := dialAs(t, addr, "stress-admin")
				verifyRegions(t, c, "/shared.dat", 0, models)
			}
		})
	}
}

// TestCommitVerifierReplay exercises the NFSv3-style restart protocol:
// the server's write-behind layer "reboots" (new boot verifier, every
// buffered-but-uncommitted write dropped) between a client's flushes
// and its COMMIT. The client must detect the verifier change, re-dirty
// its unstable blocks, and replay them — no acknowledged Sync may lose
// data.
func TestCommitVerifierReplay(t *testing.T) {
	ctx := context.Background()
	serverKey := keynote.DeterministicKey("stress-admin")
	srv, addr := testServer(t, ServerConfig{ServerKey: serverKey, WriteBehind: true})
	// A tiny write-behind window makes the client flush eagerly, so
	// blocks become unstable (flushed, uncommitted) before Sync runs.
	c := dialAsWith(t, addr, "stress-admin", WithWriteBehind(1))

	f, err := c.Open(ctx, "/replay.dat", os.O_CREATE|os.O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	// First barrier records the server's boot verifier.
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xAA}, 8192), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Write a larger span; the 1-block window forces most of it to
	// flush (unstable) before the barrier.
	want := make([]byte, 10*8192)
	for i := range want {
		want[i] = byte(i * 13)
	}
	if _, err := f.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	// Server "restart": new verifier, buffered-but-uncommitted writes
	// lost. The client's flushed WRITEs that still sat in the gather
	// queue are gone.
	srv.gather.Reboot(true)
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync with replay: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh client must read every byte back.
	c2 := dialAs(t, addr, "stress-admin")
	got, err := c2.ReadFile(ctx, "/replay.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		d := 0
		for d < len(got) && d < len(want) && got[d] == want[d] {
			d++
		}
		t.Fatalf("replayed content differs at byte %d of %d (got len %d)", d, len(want), len(got))
	}
	// The second Sync must have observed the new verifier and replayed
	// rather than silently acknowledging lost data.
	st := srv.Stats()
	if st.Commits < 2 {
		t.Errorf("commits = %d, want >= 2", st.Commits)
	}
}
