package core

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"discfs/internal/fed"
	"discfs/internal/keynote"
	"discfs/internal/nfs"
	"discfs/internal/secchan"
	"discfs/internal/sunrpc"
	"discfs/internal/xdr"
)

// The server-to-server revocation feed.
//
// PR 8 made the namespace span independent servers but left revocation
// a client-side fan-out: whichever shards the admin's client could not
// reach stayed open to the revoked principal. The feed closes that hole
// on the server side. Every server keeps an ordered log of the
// revocations its KeyNote session has applied (exported by
// internal/keynote as the session revocation log); servers configured
// with a peer list push new entries to every peer with capped
// exponential backoff, and on every (re)connect first pull the peer's
// full log — anti-entropy, so a server that was down during the admin
// action converges as soon as it can reach any fenced peer.
//
// Entries are content-addressed by (kind, target) and revocations are
// idempotent and permanent, so replay, re-push, and forwarding loops
// all converge: applying an entry twice changes nothing, and a server
// forwards only entries it had never seen. Epoch and sequence numbers
// ride along for observability (which boot originated an entry, and
// where it sits in that server's log).

// feedTick bounds how long a peer connection sits idle before the
// pusher re-checks for new log entries and connection death; kicks
// (local revocations, handshake gates) bypass it.
const feedTick = 250 * time.Millisecond

// feedDialTimeout bounds one peer dial + handshake attempt.
const feedDialTimeout = 5 * time.Second

// DefaultPeerSyncWait bounds the handshake-time anti-entropy gate: a
// server whose feed is stale (a peer is reachable but not yet pulled
// from) makes a new non-admin session wait this long for the sync
// before evaluating the peer's revocation status. See Server.Authorize.
const DefaultPeerSyncWait = 2 * time.Second

// feedEntry is one wire/log entry of the feed. Origin is the feed epoch
// (a per-boot random id) of the server whose admin action created the
// entry and Seq its position in that server's log; both are for
// observability — identity on the wire is (kind, target).
type feedEntry struct {
	kind   keynote.RevocationKind
	target string
	origin uint64
	seq    uint64
}

func (en feedEntry) key() string {
	return fmt.Sprintf("%d|%s", en.kind, en.target)
}

// revPeer is the replication state for one configured peer.
type revPeer struct {
	addr string
	// kick wakes the peer's pusher goroutine out of its idle tick or
	// backoff sleep (buffered so kicking is never blocking).
	kick chan struct{}
	// pulled reports that anti-entropy completed on the current
	// connection; with a live connection it makes the peer "fresh".
	pulled atomic.Bool
	rpc    atomic.Pointer[sunrpc.Client]
	// acked is how many log entries the peer has acknowledged on the
	// current connection (reset on reconnect; the receiver dedupes).
	acked atomic.Int64
	// attempts counts concluded sync cycles, success or failure. The
	// handshake gate uses it to stop waiting for an unreachable peer:
	// a cycle that concluded after the gate began means the peer was
	// tried and could not be synced.
	attempts atomic.Uint64
}

// fresh reports whether the peer is connected and anti-entropy has run
// on that connection — the state in which everything the peer knew at
// connect time has been absorbed and new entries arrive by push.
func (p *revPeer) fresh() bool {
	rpc := p.rpc.Load()
	return p.pulled.Load() && rpc != nil && !rpc.Broken()
}

// revFeed is one server's half of the replication mesh.
type revFeed struct {
	s     *Server
	epoch uint64

	mu sync.Mutex
	// log is every feed entry this server knows, local and remote, in
	// application order. Pushers stream suffixes of it to peers.
	log []feedEntry
	// seen holds the content key of every log entry; it is the loop
	// breaker — an entry is forwarded at most once per server.
	seen map[string]bool
	// sessSeq is the collect cursor into the session's revocation log.
	sessSeq uint64

	peers []*revPeer

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	propagated atomic.Uint64 // entries delivered to peers
	applied    atomic.Uint64 // entries received from peers and applied
}

func newRevFeed(s *Server, peers []string) (*revFeed, error) {
	if err := fed.ValidatePeers(peers); err != nil {
		return nil, err
	}
	var eb [8]byte
	if _, err := rand.Read(eb[:]); err != nil {
		return nil, err
	}
	f := &revFeed{
		s:     s,
		epoch: binary.BigEndian.Uint64(eb[:]),
		seen:  make(map[string]bool),
		stop:  make(chan struct{}),
	}
	for _, addr := range peers {
		f.peers = append(f.peers, &revPeer{addr: addr, kick: make(chan struct{}, 1)})
	}
	return f, nil
}

// start launches one pusher goroutine per configured peer.
func (f *revFeed) start() {
	for _, p := range f.peers {
		f.wg.Add(1)
		go f.runPeer(p)
	}
}

// Close stops replication and waits for the pushers to exit.
func (f *revFeed) Close() {
	f.closeOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
}

func (f *revFeed) stopped() bool {
	select {
	case <-f.stop:
		return true
	default:
		return false
	}
}

func (f *revFeed) kickAll() {
	for _, p := range f.peers {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
}

// noteLocal folds new session revocations (an admin action that just
// ran locally) into the log and wakes the pushers.
func (f *revFeed) noteLocal() {
	f.mu.Lock()
	f.collectLocked()
	f.mu.Unlock()
	f.kickAll()
}

// collectLocked imports session revocation-log entries past the cursor.
// Entries whose content the feed has already seen — every entry the
// feed itself applied from a peer — advance the cursor without being
// re-originated, which is what keeps the mesh loop-free.
func (f *revFeed) collectLocked() {
	snap := f.s.session.Snapshot()
	for _, r := range snap.Revocations(f.sessSeq) {
		f.sessSeq = r.Seq
		k := fmt.Sprintf("%d|%s", r.Kind, r.Target)
		if f.seen[k] {
			continue
		}
		f.seen[k] = true
		f.log = append(f.log, feedEntry{
			kind:   r.Kind,
			target: r.Target,
			origin: f.epoch,
			seq:    uint64(len(f.log)) + 1,
		})
	}
}

// absorb applies entries received from a peer (push or pull reply) and
// returns how many were new. New key revocations cut the target's live
// connections, and the pushers are kicked so unseen entries forward to
// the rest of the mesh.
func (f *revFeed) absorb(entries []feedEntry) int {
	f.mu.Lock()
	f.collectLocked()
	var fresh []feedEntry
	for _, en := range entries {
		k := en.key()
		if f.seen[k] {
			continue
		}
		f.seen[k] = true
		f.log = append(f.log, en)
		fresh = append(fresh, en)
	}
	f.mu.Unlock()
	if len(fresh) == 0 {
		return 0
	}
	for _, en := range fresh {
		switch en.kind {
		case keynote.RevokedKey:
			f.s.session.RevokeKey(keynote.Principal(en.target))
		case keynote.RevokedCredential:
			f.s.session.RevokeCredential(en.target)
		}
	}
	f.s.cache.Purge()
	for _, en := range fresh {
		if en.kind == keynote.RevokedKey {
			f.s.fencePeerConns(keynote.Principal(en.target))
		}
	}
	// The session entries the applications above appended are already in
	// seen; advance the cursor past them so they are not re-originated.
	f.mu.Lock()
	f.collectLocked()
	f.mu.Unlock()
	f.applied.Add(uint64(len(fresh)))
	f.kickAll()
	return len(fresh)
}

// snapshotLog returns the feed epoch and a copy of the log past since
// (a peer's pull cursor; 0 for everything).
func (f *revFeed) snapshotLog(since uint64) (uint64, []feedEntry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.collectLocked()
	if since >= uint64(len(f.log)) {
		return f.epoch, nil
	}
	return f.epoch, append([]feedEntry(nil), f.log[since:]...)
}

// unacked returns the entries the peer has not acknowledged and the
// current log length (the ack cursor a successful push advances to).
func (f *revFeed) unacked(p *revPeer) ([]feedEntry, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.collectLocked()
	acked := int(p.acked.Load())
	if acked > len(f.log) {
		acked = len(f.log)
	}
	return append([]feedEntry(nil), f.log[acked:]...), len(f.log)
}

// Lag is the feed's replication debt: the largest number of log entries
// any configured peer has not acknowledged. A peer that is unreachable
// or not yet synced owes the whole log.
func (f *revFeed) Lag() uint64 {
	f.mu.Lock()
	f.collectLocked()
	n := len(f.log)
	f.mu.Unlock()
	max := 0
	for _, p := range f.peers {
		lag := n
		if p.fresh() {
			lag = n - int(p.acked.Load())
			if lag < 0 {
				lag = 0
			}
		}
		if lag > max {
			max = lag
		}
	}
	return uint64(max)
}

// allFresh reports whether every peer is connected and synced.
func (f *revFeed) allFresh() bool {
	for _, p := range f.peers {
		if !p.fresh() {
			return false
		}
	}
	return true
}

// waitFresh is the handshake-time anti-entropy gate. It kicks the
// pushers and waits — at most timeout — until every peer is either
// fresh (connected, pulled from) or has concluded a sync attempt since
// the wait began (meaning it was tried and is unreachable right now).
// It returns whether every peer ended up fresh.
//
// The distinction matters for availability: a server rejoining after a
// partition blocks new sessions only as long as one reconnect + pull
// takes, while a server whose peer is genuinely down releases sessions
// as soon as the dial fails — staying available under partition is the
// documented trade-off, matching the paper's autonomous-server model.
func (f *revFeed) waitFresh(timeout time.Duration) bool {
	if len(f.peers) == 0 || timeout <= 0 {
		return true
	}
	if f.allFresh() {
		return true
	}
	start := make([]uint64, len(f.peers))
	for i, p := range f.peers {
		start[i] = p.attempts.Load()
	}
	deadline := time.Now().Add(timeout)
	for {
		f.kickAll()
		settled := true
		for i, p := range f.peers {
			if !p.fresh() && p.attempts.Load() == start[i] {
				settled = false
				break
			}
		}
		if settled {
			return f.allFresh()
		}
		if f.stopped() || !time.Now().Before(deadline) {
			return f.allFresh()
		}
		select {
		case <-f.stop:
			return f.allFresh()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// runPeer is one peer's pusher goroutine: dial, pull (anti-entropy),
// then push new entries until the connection breaks; reconnect under
// capped exponential backoff, interruptible by kicks.
func (f *revFeed) runPeer(p *revPeer) {
	defer f.wg.Done()
	var bo backoff
	for {
		if f.stopped() {
			return
		}
		rpc, err := f.dialPeer(p.addr)
		if err == nil {
			p.rpc.Store(rpc)
			if err = f.pull(rpc); err == nil {
				bo.reset()
				p.acked.Store(0)
				p.pulled.Store(true)
				err = f.pushLoop(p, rpc)
			} else {
				// Reached the peer but could not sync: a concluded attempt.
				p.attempts.Add(1)
			}
			p.pulled.Store(false)
			p.rpc.Store(nil)
			rpc.Close()
		} else {
			// Unreachable. Only dial/pull failures count as concluded
			// attempts for the handshake gate — a push loop ending because
			// an old connection died says nothing about reachability NOW,
			// and counting it would fail the gate open in exactly the
			// heal-then-handshake window the gate exists for (the retry
			// that follows immediately is the attempt that should count).
			p.attempts.Add(1)
		}
		if f.stopped() {
			return
		}
		_ = err
		bo.fail(time.Now())
		select {
		case <-time.After(time.Until(bo.next)):
		case <-p.kick:
		case <-f.stop:
			return
		}
	}
}

func (f *revFeed) dialPeer(addr string) (*sunrpc.Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), feedDialTimeout)
	defer cancel()
	conn, err := secchan.DialContext(ctx, addr, secchan.Config{Identity: f.s.key})
	if err != nil {
		return nil, err
	}
	return sunrpc.NewClient(conn), nil
}

// pull fetches the peer's whole log and absorbs it. Revocations are
// rare and content-deduped, so a full replay per reconnect stays cheap
// and needs no durable cursor.
func (f *revFeed) pull(rpc *sunrpc.Client) error {
	ctx, cancel := context.WithTimeout(context.Background(), feedDialTimeout)
	defer cancel()
	e := xdr.NewEncoder()
	e.Uint64(0)
	d, err := rpc.Call(ctx, ExtProg, ExtVers, ExtRevPull, e.Bytes())
	if err != nil {
		return err
	}
	status := d.Uint32()
	_ = d.Uint64() // peer's feed epoch (observability)
	entries, ok := decodeFeedEntries(d)
	derr := d.Err()
	nfs.RecycleReply(d)
	if derr != nil {
		return derr
	}
	if !ok {
		return errors.New("revfeed: malformed pull reply")
	}
	if status != extOK {
		return fmt.Errorf("revfeed: pull refused (status %d; is this server's key an admin of the peer?)", status)
	}
	f.absorb(entries)
	return nil
}

// push delivers one batch of entries to the peer.
func (f *revFeed) push(rpc *sunrpc.Client, batch []feedEntry) error {
	ctx, cancel := context.WithTimeout(context.Background(), feedDialTimeout)
	defer cancel()
	e := xdr.NewEncoder()
	e.Uint64(f.epoch)
	encodeFeedEntries(e, batch)
	d, err := rpc.Call(ctx, ExtProg, ExtVers, ExtRevPush, e.Bytes())
	if err != nil {
		return err
	}
	status := d.Uint32()
	_ = d.Uint32() // entries newly applied by the peer
	derr := d.Err()
	nfs.RecycleReply(d)
	if derr != nil {
		return derr
	}
	if status != extOK {
		return fmt.Errorf("revfeed: push refused (status %d; is this server's key an admin of the peer?)", status)
	}
	return nil
}

// pushLoop streams unacknowledged entries until the connection breaks
// or the feed closes.
func (f *revFeed) pushLoop(p *revPeer, rpc *sunrpc.Client) error {
	for {
		// Checked every iteration, not just on the idle tick: while the
		// handshake gate is kicking (a session waiting on anti-entropy),
		// the kick always wins the select below, and a pusher that never
		// noticed its connection died during a partition would pin the
		// peer un-fresh until the gate gave up.
		if rpc.Broken() {
			return errors.New("revfeed: peer connection broken")
		}
		batch, total := f.unacked(p)
		if len(batch) > 0 {
			if err := f.push(rpc, batch); err != nil {
				return err
			}
			p.acked.Store(int64(total))
			f.propagated.Add(uint64(len(batch)))
		}
		select {
		case <-p.kick:
		case <-time.After(feedTick):
		case <-f.stop:
			return nil
		}
	}
}

// fencePeerConns cuts every live connection authenticated as the
// (canonicalized) principal, so a revocation takes effect on live
// sessions immediately instead of at their next failed check.
func (s *Server) fencePeerConns(target keynote.Principal) {
	s.rpc.ClosePeer(string(keynote.CanonicalPrincipal(target)))
}

// ---- wire encoding (shared by push and pull) ----

func encodeFeedEntries(e *xdr.Encoder, entries []feedEntry) {
	e.Uint32(uint32(len(entries)))
	for _, en := range entries {
		e.Uint32(uint32(en.kind))
		e.Uint64(en.origin)
		e.Uint64(en.seq)
		e.String(en.target)
	}
}

func decodeFeedEntries(d *xdr.Decoder) ([]feedEntry, bool) {
	n := d.Count(1 << 16)
	entries := make([]feedEntry, 0, n)
	for i := 0; i < n; i++ {
		en := feedEntry{
			kind:   keynote.RevocationKind(d.Uint32()),
			origin: d.Uint64(),
			seq:    d.Uint64(),
			target: d.String(maxCredText),
		}
		if d.Err() != nil {
			return nil, false
		}
		if en.kind != keynote.RevokedKey && en.kind != keynote.RevokedCredential {
			return nil, false
		}
		entries = append(entries, en)
	}
	return entries, true
}
