package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"discfs/internal/audit"
	"discfs/internal/cfs"
	"discfs/internal/ffs"
	"discfs/internal/keynote"
	"discfs/internal/nfs"
	"discfs/internal/sunrpc"
	"discfs/internal/vfs"
)

// testServer builds the full paper stack: FFS → CFS-NE → DisCFS server,
// served over the secure channel on a loopback port.
func testServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	if cfg.Backing == nil {
		backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 16384})
		if err != nil {
			t.Fatalf("ffs.New: %v", err)
		}
		ne, err := cfs.New(backing, "", false) // CFS-NE, as in the prototype
		if err != nil {
			t.Fatalf("cfs.New: %v", err)
		}
		cfg.Backing = ne
	}
	if cfg.ServerKey == nil {
		cfg.ServerKey = keynote.DeterministicKey("test-admin")
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func dialAs(t *testing.T, addr, seed string) *Client {
	t.Helper()
	return dialAsWith(t, addr, seed)
}

func dialAsWith(t *testing.T, addr, seed string, opts ...ClientOption) *Client {
	ctx := context.Background()
	t.Helper()
	c, err := Dial(ctx, addr, keynote.DeterministicKey(seed), opts...)
	if err != nil {
		t.Fatalf("Dial(%s): %v", seed, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestAttachShowsMode000WithoutCredentials(t *testing.T) {
	ctx := context.Background()
	_, addr := testServer(t, ServerConfig{})
	c := dialAs(t, addr, "stranger")
	attr, err := c.NFS().GetAttr(ctx, c.Root())
	if err != nil {
		t.Fatalf("GetAttr(root): %v", err)
	}
	if attr.Mode != 0 {
		t.Errorf("uncredentialed root mode = %o, want 000", attr.Mode)
	}
	// Every operation is denied.
	if _, err := c.NFS().Lookup(ctx, c.Root(), "anything"); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("lookup = %v, want EACCES", err)
	}
	if _, err := c.NFS().Create(ctx, c.Root(), "f", 0o644); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("create = %v, want EACCES", err)
	}
	if _, err := c.NFS().ReadDirAll(ctx, c.Root()); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("readdir = %v, want EACCES", err)
	}
}

// TestPaperFigure1Flow is the paper's running example end to end:
// the administrator delegates the root to Bob; Bob stores a paper and
// issues Alice a read-only credential; Alice reads the file with the
// full chain and is denied writes and denied everything without the
// chain.
func TestPaperFigure1Flow(t *testing.T) {
	ctx := context.Background()
	srv, addr := testServer(t, ServerConfig{})

	bobKey := keynote.DeterministicKey("bob")
	aliceKey := keynote.DeterministicKey("alice")

	// 1st certificate: administrator → Bob (RWX on the whole tree).
	rootIno := srv.backing.Root().Ino
	adminToBob, err := srv.IssueCredential(bobKey.Principal, rootIno, "RWX", "admin delegates tree to bob")
	if err != nil {
		t.Fatalf("IssueCredential: %v", err)
	}

	// Bob attaches and stores the paper.
	bob := dialAs(t, addr, "bob")
	if _, err := bob.SubmitCredentials(ctx, adminToBob); err != nil {
		t.Fatalf("bob submit: %v", err)
	}
	paper := []byte("DisCFS: credentials identify files, users, and conditions")
	attr, _, err := bob.WriteFile(ctx, "/paper.txt", paper)
	if err != nil {
		t.Fatalf("bob write: %v", err)
	}
	// Root now shows Bob's permissions.
	rootAttr, _ := bob.NFS().GetAttr(ctx, bob.Root())
	if rootAttr.Mode&0o700 != 0o700 {
		t.Errorf("bob's root mode = %o, want rwx for user bits", rootAttr.Mode)
	}

	// 2nd certificate: Bob → Alice, read+search on the tree holding the
	// paper (the paper's Figure 5 grants on a directory; reading files
	// beneath it needs the search bit for lookups, as in Unix).
	bobToAlice, err := bob.Delegate(ctx, aliceKey.Principal, rootIno, "RX", "bob lets alice read the paper")
	if err != nil {
		t.Fatalf("Delegate: %v", err)
	}

	// Alice without any credentials: denied.
	alice := dialAs(t, addr, "alice")
	if _, err := alice.ReadFile(ctx, "/paper.txt"); nfs.StatOf(err) != nfs.ErrAcces {
		t.Fatalf("alice without creds = %v, want EACCES", err)
	}

	// Alice submits Bob's credential. The admin→Bob link is already in
	// the server's persistent session (it was issued there), matching
	// the paper's credential-caching observation; the strict
	// two-credential requirement is covered by
	// TestAliceNeedsBothCredentials.
	if _, err := alice.SubmitCredentials(ctx, bobToAlice); err != nil {
		t.Fatalf("alice submit: %v", err)
	}
	got, err := alice.ReadFile(ctx, "/paper.txt")
	if err != nil {
		t.Fatalf("alice read: %v", err)
	}
	if !bytes.Equal(got, paper) {
		t.Errorf("alice read %q", got)
	}
	// Alice cannot write: her compliance value is RX, no W bit.
	if _, err := alice.NFS().Write(ctx, attr.Handle, 0, []byte("defaced")); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("alice write = %v, want EACCES", err)
	}
	// Alice cannot delete.
	if err := alice.NFS().Remove(ctx, alice.Root(), "paper.txt"); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("alice remove = %v, want EACCES", err)
	}
}

// TestAliceNeedsBothCredentials uses two servers to show the chain
// requirement strictly: a server that never saw the admin→bob credential
// denies Alice even with bob→alice submitted.
func TestAliceNeedsBothCredentials(t *testing.T) {
	ctx := context.Background()
	adminKey := keynote.DeterministicKey("chain-admin")
	bobKey := keynote.DeterministicKey("chain-bob")
	aliceKey := keynote.DeterministicKey("chain-alice")

	srv, addr := testServer(t, ServerConfig{ServerKey: adminKey})
	rootIno := srv.backing.Root().Ino

	// Credentials signed out of band (never stored server-side).
	adminToBob, err := keynote.Sign(adminKey, keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(bobKey.Principal),
		Conditions: SubtreeConditions(rootIno, "RWX", true, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	bobToAlice, err := keynote.Sign(bobKey, keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(aliceKey.Principal),
		Conditions: SubtreeConditions(rootIno, "R", true, ""),
	})
	if err != nil {
		t.Fatal(err)
	}

	alice := dialAs(t, addr, "chain-alice")
	// Only her own credential: no chain to POLICY.
	if _, err := alice.SubmitCredentials(ctx, bobToAlice); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.NFS().ReadDirAll(ctx, alice.Root()); nfs.StatOf(err) != nfs.ErrAcces {
		t.Fatalf("partial chain = %v, want EACCES", err)
	}
	// Submit the missing link: now the chain closes.
	if _, err := alice.SubmitCredentials(ctx, adminToBob); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.NFS().ReadDirAll(ctx, alice.Root()); err != nil {
		t.Errorf("full chain readdir: %v", err)
	}
}

func TestCreateIssuesCredential(t *testing.T) {
	ctx := context.Background()
	srv, addr := testServer(t, ServerConfig{})
	bobKey := keynote.DeterministicKey("bob")
	srv.IssueCredential(bobKey.Principal, srv.backing.Root().Ino, "RWX", "bob full access")

	bob := dialAs(t, addr, "bob")
	attr, credText, err := bob.CreateWithCredential(ctx, bob.Root(), "mine.txt", 0o644)
	if err != nil {
		t.Fatalf("CreateWithCredential: %v", err)
	}
	if credText == "" {
		t.Fatal("no credential returned")
	}
	cred, err := keynote.ParseAssertion(credText)
	if err != nil {
		t.Fatalf("returned credential does not parse: %v", err)
	}
	if err := cred.Verify(); err != nil {
		t.Fatalf("returned credential does not verify: %v", err)
	}
	if cred.Authorizer != srv.Principal() {
		t.Errorf("credential authorizer = %s, want server", cred.Authorizer.Short())
	}
	lics := cred.Licensees()
	if len(lics) != 1 || lics[0] != bobKey.Principal {
		t.Errorf("licensees = %v, want bob", lics)
	}
	if !strings.Contains(cred.Source, `HANDLE == "`+itoa(attr.Handle.Ino)+`"`) {
		t.Errorf("credential does not name the handle: %s", cred.Source)
	}
	// The creator can use the new file immediately.
	if _, err := bob.NFS().Write(ctx, attr.Handle, 0, []byte("x")); err != nil {
		t.Errorf("creator write: %v", err)
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestSubtreeScopedDelegation(t *testing.T) {
	ctx := context.Background()
	srv, addr := testServer(t, ServerConfig{})
	bobKey := keynote.DeterministicKey("bob")
	srv.IssueCredential(bobKey.Principal, srv.backing.Root().Ino, "RWX", "")

	bob := dialAs(t, addr, "bob")
	share, _, err := bob.MkdirPath(ctx, "/share")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bob.WriteFile(ctx, "/share/inside.txt", []byte("in")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bob.WriteFile(ctx, "/private.txt", []byte("out")); err != nil {
		t.Fatal(err)
	}

	carolKey := keynote.DeterministicKey("carol")
	// Bob grants Carol read on /share subtree plus search on the root so
	// she can walk the path (two credentials, as a real user would).
	credShare, err := bob.Delegate(ctx, carolKey.Principal, share.Handle.Ino, "R", "carol reads share")
	if err != nil {
		t.Fatal(err)
	}
	credWalk, err := bob.Delegate(ctx, carolKey.Principal, srv.backing.Root().Ino, "X", "carol walks root")
	if err != nil {
		t.Fatal(err)
	}
	// But wait: subtree X on root would give X everywhere; scope it to
	// the root handle only (no subtree) for a tight grant.
	credWalkTight, err := keynote.Sign(bob.Identity(), keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(carolKey.Principal),
		Conditions: SubtreeConditions(srv.backing.Root().Ino, "X", false, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = credWalk

	carol := dialAs(t, addr, "carol")
	if _, err := carol.SubmitCredentials(ctx, credShare, credWalkTight); err != nil {
		t.Fatal(err)
	}
	// Carol reads inside the share. Lookup of "share" needs X on root
	// (granted), lookup of "inside.txt" needs X on share: the R-subtree
	// credential gives R only… the share credential value is "R" which
	// has no X bit, so path lookup inside share fails. Grant RX instead:
	credShareRX, err := bob.Delegate(ctx, carolKey.Principal, share.Handle.Ino, "RX", "carol reads+searches share")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := carol.SubmitCredentials(ctx, credShareRX); err != nil {
		t.Fatal(err)
	}
	got, err := carol.ReadFile(ctx, "/share/inside.txt")
	if err != nil {
		t.Fatalf("carol read inside: %v", err)
	}
	if string(got) != "in" {
		t.Errorf("carol read %q", got)
	}
	// Outside the subtree: denied.
	if _, err := carol.ReadFile(ctx, "/private.txt"); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("carol read private = %v, want EACCES", err)
	}
	// Carol cannot write inside the share either.
	if _, _, err := carol.WriteFile(ctx, "/share/new.txt", []byte("no")); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("carol write in share = %v, want EACCES", err)
	}
}

func TestRevocationMidSession(t *testing.T) {
	ctx := context.Background()
	srv, addr := testServer(t, ServerConfig{})
	bobKey := keynote.DeterministicKey("bob")
	srv.IssueCredential(bobKey.Principal, srv.backing.Root().Ino, "RWX", "")

	bob := dialAs(t, addr, "bob")
	if _, _, err := bob.WriteFile(ctx, "/doc.txt", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Admin attaches and revokes Bob's key.
	admin := dialAs(t, addr, "test-admin")
	if _, err := admin.RevokeKey(ctx, bobKey.Principal); err != nil {
		t.Fatalf("RevokeKey: %v", err)
	}

	// Bob's existing connection is cut by the fence and the transparent
	// redial is refused at the handshake. The call racing the cut may
	// die with the connection's transport error; the next one reports
	// the revocation off the poisoned link.
	_, err := bob.ReadFile(ctx, "/doc.txt")
	if err == nil {
		t.Fatal("revoked bob read succeeded")
	}
	if !errors.Is(err, ErrRevoked) {
		if _, err = bob.ReadFile(ctx, "/doc.txt"); !errors.Is(err, ErrRevoked) {
			t.Errorf("revoked bob read = %v, want ErrRevoked", err)
		}
	}
	// New connections from Bob are rejected at the handshake.
	if _, err := Dial(ctx, addr, bobKey); err == nil {
		t.Error("revoked bob reconnected")
	}
	// Non-admins cannot revoke.
	mallory := dialAs(t, addr, "mallory")
	if _, err := mallory.RevokeKey(ctx, keynote.DeterministicKey("victim").Principal); !errors.Is(err, ErrNotAdmin) {
		t.Errorf("mallory revoke = %v, want ErrNotAdmin", err)
	}
}

func TestRevokeSingleCredential(t *testing.T) {
	ctx := context.Background()
	srv, addr := testServer(t, ServerConfig{})
	bobKey := keynote.DeterministicKey("bob")
	cred, err := srv.IssueCredential(bobKey.Principal, srv.backing.Root().Ino, "RWX", "")
	if err != nil {
		t.Fatal(err)
	}
	bob := dialAs(t, addr, "bob")
	if _, _, err := bob.WriteFile(ctx, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	admin := dialAs(t, addr, "test-admin")
	found, err := admin.RevokeCredential(ctx, cred.SignatureValue)
	if err != nil || !found {
		t.Fatalf("RevokeCredential = %v, %v", found, err)
	}
	// Bob keeps the per-file credential issued at create, but loses the
	// tree-wide grant: reading the root directory is now denied.
	if _, err := bob.NFS().ReadDirAll(ctx, bob.Root()); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("after cred revocation, readdir = %v, want EACCES", err)
	}
}

func TestWhoAmIAndListCreds(t *testing.T) {
	ctx := context.Background()
	srv, addr := testServer(t, ServerConfig{})
	bobKey := keynote.DeterministicKey("bob")
	bob := dialAs(t, addr, "bob")
	p, err := bob.WhoAmI(ctx)
	if err != nil {
		t.Fatalf("WhoAmI: %v", err)
	}
	if p != bobKey.Principal {
		t.Errorf("WhoAmI = %s, want bob", p.Short())
	}
	// ListCredentials is admin-only.
	if _, err := bob.ListCredentials(ctx); !errors.Is(err, ErrNotAdmin) {
		t.Errorf("bob list = %v, want ErrNotAdmin", err)
	}
	srv.IssueCredential(bobKey.Principal, srv.backing.Root().Ino, "R", "")
	admin := dialAs(t, addr, "test-admin")
	creds, err := admin.ListCredentials(ctx)
	if err != nil {
		t.Fatalf("admin list: %v", err)
	}
	if len(creds) != 1 {
		t.Errorf("%d credentials listed, want 1", len(creds))
	}
}

func TestAdminHasImplicitFullAccess(t *testing.T) {
	ctx := context.Background()
	_, addr := testServer(t, ServerConfig{})
	admin := dialAs(t, addr, "test-admin")
	// The admin key is trusted by policy directly — no credentials needed.
	if _, _, err := admin.WriteFile(ctx, "/admin.txt", []byte("root of trust")); err != nil {
		t.Fatalf("admin write: %v", err)
	}
	got, err := admin.ReadFile(ctx, "/admin.txt")
	if err != nil || string(got) != "root of trust" {
		t.Errorf("admin read = %q, %v", got, err)
	}
}

func TestTimeOfDayCredential(t *testing.T) {
	ctx := context.Background()
	// Server clock injected: first noon, then evening.
	clock := time.Date(2001, 6, 15, 12, 0, 0, 0, time.UTC)
	srv, addr := testServer(t, ServerConfig{
		Now:       func() time.Time { return clock },
		CacheSize: -1, // disable caching so clock changes act immediately
	})
	bobKey := keynote.DeterministicKey("bob")
	srv.IssueCredential(bobKey.Principal, srv.backing.Root().Ino, "RWX", "")
	bob := dialAs(t, addr, "bob")
	leisure, _, err := bob.WriteFile(ctx, "/leisure.txt", []byte("fun"))
	if err != nil {
		t.Fatal(err)
	}

	// Bob grants Dave off-hours read access (paper §3.1: leisure files
	// unavailable during office hours).
	daveKey := keynote.DeterministicKey("dave")
	cred, err := bob.DelegateWithConditions(ctx, daveKey.Principal, leisure.Handle.Ino,
		"R", `@hour < 9 || @hour >= 17`, "off-hours only")
	if err != nil {
		t.Fatal(err)
	}
	dave := dialAs(t, addr, "dave")
	if _, err := dave.SubmitCredentials(ctx, cred); err != nil {
		t.Fatal(err)
	}
	// Noon: denied.
	if _, _, err := dave.NFS().Read(ctx, leisure.Handle, 0, 10); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("noon read = %v, want EACCES", err)
	}
	// Evening: allowed.
	clock = time.Date(2001, 6, 15, 19, 0, 0, 0, time.UTC)
	data, _, err := dave.NFS().Read(ctx, leisure.Handle, 0, 10)
	if err != nil || string(data) != "fun" {
		t.Errorf("evening read = %q, %v", data, err)
	}
}

func TestPolicyCacheCountsHits(t *testing.T) {
	ctx := context.Background()
	srv, addr := testServer(t, ServerConfig{CacheSize: 128})
	bobKey := keynote.DeterministicKey("bob")
	srv.IssueCredential(bobKey.Principal, srv.backing.Root().Ino, "RWX", "")
	bob := dialAs(t, addr, "bob")
	attr, _, err := bob.WriteFile(ctx, "/hot.txt", bytes.Repeat([]byte("d"), 64))
	if err != nil {
		t.Fatal(err)
	}
	before, _ := bob.ServerStats(ctx)
	for i := 0; i < 50; i++ {
		if _, _, err := bob.NFS().Read(ctx, attr.Handle, 0, 64); err != nil {
			t.Fatal(err)
		}
	}
	after, err := bob.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	newQueries := after.Queries - before.Queries
	newHits := after.CacheHits - before.CacheHits
	if newHits < 45 {
		t.Errorf("cache hits = %d over 50 repeated reads, want ≥45", newHits)
	}
	if newQueries > 5 {
		t.Errorf("full queries = %d over 50 repeated reads, want ≤5", newQueries)
	}
}

func TestCredentialSubmissionInvalidatesCache(t *testing.T) {
	ctx := context.Background()
	srv, addr := testServer(t, ServerConfig{})
	bobKey := keynote.DeterministicKey("bob")
	bob := dialAs(t, addr, "bob")
	// Denied, and the denial is cached.
	if _, err := bob.NFS().ReadDirAll(ctx, bob.Root()); nfs.StatOf(err) != nfs.ErrAcces {
		t.Fatal("expected initial denial")
	}
	// Grant arrives (session generation bumps, cache entries die).
	srv.IssueCredential(bobKey.Principal, srv.backing.Root().Ino, "RWX", "")
	if _, err := bob.NFS().ReadDirAll(ctx, bob.Root()); err != nil {
		t.Errorf("post-grant readdir still denied: %v", err)
	}
}

func TestAuditTrail(t *testing.T) {
	ctx := context.Background()
	log := audit.New(64, nil)
	srv, addr := testServer(t, ServerConfig{Audit: log})
	bobKey := keynote.DeterministicKey("bob")
	srv.IssueCredential(bobKey.Principal, srv.backing.Root().Ino, "RWX", "")
	bob := dialAs(t, addr, "bob")
	bob.WriteFile(ctx, "/audited.txt", []byte("x"))
	mallory := dialAs(t, addr, "mallory")
	mallory.ReadFile(ctx, "/audited.txt") // denied

	recent := log.Recent(64)
	if len(recent) == 0 {
		t.Fatal("no audit records")
	}
	var sawBobAllow, sawMalloryDeny bool
	for _, r := range recent {
		if r.Peer == string(bobKey.Principal) && r.Allowed {
			sawBobAllow = true
		}
		if r.Peer == string(keynote.DeterministicKey("mallory").Principal) && !r.Allowed {
			sawMalloryDeny = true
		}
	}
	if !sawBobAllow {
		t.Error("no allowed record for bob")
	}
	if !sawMalloryDeny {
		t.Error("no denied record for mallory")
	}
	total, denied := log.Totals()
	if total == 0 || denied == 0 {
		t.Errorf("totals = %d/%d", total, denied)
	}
}

func TestExtraPolicyText(t *testing.T) {
	ctx := context.Background()
	// A site policy granting a named key read access to everything, with
	// no credentials at all (the paper's "default policy" requirement).
	guestKey := keynote.DeterministicKey("guest")
	policy := "Authorizer: \"POLICY\"\n" +
		"Licensees: \"" + string(guestKey.Principal) + "\"\n" +
		"Conditions: app_domain == \"DisCFS\" -> \"RX\";\n"
	srv, addr := testServer(t, ServerConfig{PolicyText: policy})
	srv.IssueCredential(keynote.DeterministicKey("bob").Principal, srv.backing.Root().Ino, "RWX", "")
	bob := dialAs(t, addr, "bob")
	bob.WriteFile(ctx, "/public.txt", []byte("hello"))

	guest := dialAs(t, addr, "guest")
	got, err := guest.ReadFile(ctx, "/public.txt")
	if err != nil || string(got) != "hello" {
		t.Errorf("guest read = %q, %v", got, err)
	}
	if _, _, err := guest.WriteFile(ctx, "/evil.txt", []byte("w")); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("guest write = %v, want EACCES", err)
	}
}

func TestStatFSPassesThrough(t *testing.T) {
	ctx := context.Background()
	_, addr := testServer(t, ServerConfig{})
	c := dialAs(t, addr, "anyone")
	st, err := c.NFS().StatFS(ctx, c.Root())
	if err != nil {
		t.Fatalf("StatFS: %v", err)
	}
	if st.BSize == 0 || st.Blocks == 0 {
		t.Errorf("statfs = %+v", st)
	}
}

func TestDelegationChainThreeLevels(t *testing.T) {
	ctx := context.Background()
	srv, addr := testServer(t, ServerConfig{})
	bobKey := keynote.DeterministicKey("bob")
	srv.IssueCredential(bobKey.Principal, srv.backing.Root().Ino, "RWX", "")
	bob := dialAs(t, addr, "bob")
	attr, _, err := bob.WriteFile(ctx, "/chain.txt", []byte("deep"))
	if err != nil {
		t.Fatal(err)
	}
	// bob → carol (RW) → dave (R): dave presents the whole chain.
	carolKey := keynote.DeterministicKey("carol")
	daveKey := keynote.DeterministicKey("dave")
	bobToCarol, err := bob.Delegate(ctx, carolKey.Principal, attr.Handle.Ino, "RW", "")
	if err != nil {
		t.Fatal(err)
	}
	carolToDave, err := keynote.Sign(keynote.DeterministicKey("carol"), keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(daveKey.Principal),
		Conditions: SubtreeConditions(attr.Handle.Ino, "R", true, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	dave := dialAs(t, addr, "dave")
	if _, err := dave.SubmitCredentials(ctx, bobToCarol, carolToDave); err != nil {
		t.Fatal(err)
	}
	data, _, err := dave.NFS().Read(ctx, attr.Handle, 0, 16)
	if err != nil || string(data) != "deep" {
		t.Errorf("dave read = %q, %v", data, err)
	}
	// Dave's R does not include W even though carol had RW.
	if _, err := dave.NFS().Write(ctx, attr.Handle, 0, []byte("no")); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("dave write = %v, want EACCES", err)
	}
}

// TestAnonymousWWWAccess exercises the paper's §7 future-work scenario:
// untrusted Web-style users fetching public files without registration or
// even a key. The server additionally listens on plain TCP; such peers
// are the "anonymous" principal and receive what policy grants it.
func TestAnonymousWWWAccess(t *testing.T) {
	ctx := context.Background()
	policy := "Authorizer: \"POLICY\"\n" +
		"Licensees: \"anonymous\"\n" +
		"Conditions: app_domain == \"DisCFS\" -> \"RX\";\n"
	srv, addr := testServer(t, ServerConfig{PolicyText: policy})

	// Publish a file as the admin over the secure channel.
	admin := dialAs(t, addr, "test-admin")
	if _, _, err := admin.WriteFile(ctx, "/index.html", []byte("<h1>hello</h1>")); err != nil {
		t.Fatal(err)
	}

	// Anonymous side: plain TCP, no handshake, no identity.
	plainLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServePlain(plainLn)
	defer plainLn.Close()
	conn, err := net.Dial("tcp", plainLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := nfs.NewClient(sunrpc.NewClient(conn))
	defer nc.RPC().Close()
	root, err := nc.Mount(ctx, "/discfs")
	if err != nil {
		t.Fatalf("anonymous mount: %v", err)
	}
	attr, err := nc.Lookup(ctx, root, "index.html")
	if err != nil {
		t.Fatalf("anonymous lookup: %v", err)
	}
	data, _, err := nc.Read(ctx, attr.Handle, 0, 100)
	if err != nil || string(data) != "<h1>hello</h1>" {
		t.Errorf("anonymous read = %q, %v", data, err)
	}
	// Anonymous users cannot write — RX only.
	if _, err := nc.Create(ctx, root, "evil", 0o644); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("anonymous create = %v, want EACCES", err)
	}
	if _, err := nc.Write(ctx, attr.Handle, 0, []byte("defaced")); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("anonymous write = %v, want EACCES", err)
	}
}

// TestAnonymousDeniedByDefault: without a policy grant the anonymous
// principal gets nothing.
func TestAnonymousDeniedByDefault(t *testing.T) {
	ctx := context.Background()
	srv, _ := testServer(t, ServerConfig{})
	plainLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServePlain(plainLn)
	defer plainLn.Close()
	conn, err := net.Dial("tcp", plainLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := nfs.NewClient(sunrpc.NewClient(conn))
	defer nc.RPC().Close()
	root, err := nc.Mount(ctx, "/discfs")
	if err != nil {
		t.Fatalf("mount: %v", err)
	}
	if _, err := nc.ReadDirAll(ctx, root); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("anonymous readdir = %v, want EACCES", err)
	}
	a, err := nc.GetAttr(ctx, root)
	if err != nil {
		t.Fatalf("GetAttr: %v", err)
	}
	if a.Mode != 0 {
		t.Errorf("anonymous root mode = %o, want 000", a.Mode)
	}
}

// TestConcurrentClients hammers one server with several authenticated
// clients doing mixed operations — delegation, IO, credential
// submission, stats — concurrently.
func TestConcurrentClients(t *testing.T) {
	ctx := context.Background()
	srv, addr := testServer(t, ServerConfig{})
	rootIno := srv.backing.Root().Ino

	const nClients = 6
	errc := make(chan error, nClients)
	for g := 0; g < nClients; g++ {
		go func(g int) {
			seed := fmt.Sprintf("conc-%d", g)
			key := keynote.DeterministicKey(seed)
			if _, err := srv.IssueCredential(key.Principal, rootIno, "RWX", seed); err != nil {
				errc <- err
				return
			}
			c, err := Dial(ctx, addr, key)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			dir := fmt.Sprintf("/home-%d", g)
			if _, _, err := c.MkdirPath(ctx, dir); err != nil {
				errc <- fmt.Errorf("mkdir: %w", err)
				return
			}
			for i := 0; i < 20; i++ {
				path := fmt.Sprintf("%s/f%d", dir, i)
				content := []byte(fmt.Sprintf("client %d file %d", g, i))
				if _, _, err := c.WriteFile(ctx, path, content); err != nil {
					errc <- fmt.Errorf("write %s: %w", path, err)
					return
				}
				got, err := c.ReadFile(ctx, path)
				if err != nil || string(got) != string(content) {
					errc <- fmt.Errorf("read %s = %q, %v", path, got, err)
					return
				}
				if i%5 == 0 {
					if _, err := c.ServerStats(ctx); err != nil {
						errc <- err
						return
					}
				}
			}
			// Delegate to a friend and have the friend read.
			friendKey := keynote.DeterministicKey(seed + "-friend")
			cred, err := c.Delegate(ctx, friendKey.Principal, rootIno, "RX", "")
			if err != nil {
				errc <- err
				return
			}
			friend, err := DialWithCredentials(ctx, addr, friendKey, cred)
			if err != nil {
				errc <- err
				return
			}
			defer friend.Close()
			if _, err := friend.ReadFile(ctx, dir+"/f0"); err != nil {
				errc <- fmt.Errorf("friend read: %w", err)
				return
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < nClients; g++ {
		if err := <-errc; err != nil {
			t.Fatalf("client: %v", err)
		}
	}
}

// TestDistributedServers exercises the paper's §4.3 requirement: "the
// entire scheme works with both monolithic and distributed servers.
// Since the servers do not need to share information about users, there
// is no synchronization overhead." Two DisCFS servers share nothing but
// the administrator's public key in their policies; one user, one key,
// per-server credentials, no user database anywhere.
func TestDistributedServers(t *testing.T) {
	ctx := context.Background()
	adminKey := keynote.DeterministicKey("dist-admin")
	srvA, addrA := testServer(t, ServerConfig{ServerKey: adminKey})
	srvB, addrB := testServer(t, ServerConfig{ServerKey: adminKey})

	userKey := keynote.DeterministicKey("dist-user")
	// The admin issues one credential per repository, as each holds a
	// different part of the distributed filesystem.
	credA, err := keynote.Sign(adminKey, keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(userKey.Principal),
		Conditions: SubtreeConditions(srvA.backing.Root().Ino, "RWX", true, ""),
		Comment:    "user on repository A",
	})
	if err != nil {
		t.Fatal(err)
	}
	credB, err := keynote.Sign(adminKey, keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(userKey.Principal),
		Conditions: SubtreeConditions(srvB.backing.Root().Ino, "RX", true, ""),
		Comment:    "user on repository B, read-only",
	})
	if err != nil {
		t.Fatal(err)
	}

	cA, err := DialWithCredentials(ctx, addrA, userKey, credA)
	if err != nil {
		t.Fatal(err)
	}
	defer cA.Close()
	cB, err := DialWithCredentials(ctx, addrB, userKey, credB)
	if err != nil {
		t.Fatal(err)
	}
	defer cB.Close()

	// Full access on A.
	if _, _, err := cA.WriteFile(ctx, "/on-a.txt", []byte("written to A")); err != nil {
		t.Fatalf("write on A: %v", err)
	}
	// Read-only on B: listing works, writing does not.
	if _, err := cB.NFS().ReadDirAll(ctx, cB.Root()); err != nil {
		t.Fatalf("readdir on B: %v", err)
	}
	if _, _, err := cB.WriteFile(ctx, "/on-b.txt", []byte("no")); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("write on B = %v, want EACCES", err)
	}
	// Revocation is per-server state: revoking the user on B leaves A
	// untouched — no synchronization, as the paper promises.
	srvB.Session().RevokeKey(userKey.Principal)
	if _, err := cB.NFS().ReadDirAll(ctx, cB.Root()); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("B after revocation = %v, want EACCES", err)
	}
	if _, err := cA.ReadFile(ctx, "/on-a.txt"); err != nil {
		t.Errorf("A after B's revocation: %v", err)
	}
}

// TestEncryptedBackingStore runs the full DisCFS stack over a CFS layer
// with encryption ON — the paper notes "CFS-like encryption mechanisms
// may still be used on top of DisCFS" (§3.1); here they are used under
// it, the other composition the layering allows.
func TestEncryptedBackingStore(t *testing.T) {
	ctx := context.Background()
	backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 8192})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := cfs.New(backing, "server side secret", true)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := testServer(t, ServerConfig{Backing: enc})
	bobKey := keynote.DeterministicKey("bob")
	srv.IssueCredential(bobKey.Principal, enc.Root().Ino, "RWX", "")
	bob := dialAs(t, addr, "bob")
	secret := []byte("credentials above, ciphertext below")
	if _, _, err := bob.WriteFile(ctx, "/layered.txt", secret); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := bob.ReadFile(ctx, "/layered.txt")
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("read = %q, %v", got, err)
	}
	// The raw FFS under the CFS layer holds only ciphertext.
	ents, err := backing.ReadDir(backing.Root())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name, "layered") {
			t.Errorf("raw store leaks name %q", e.Name)
		}
	}
}

// TestSymlinkAndLinkThroughPolicy drives the remaining NFS procedures
// through the credential layer: symlink targets need R to read, link
// needs W on both directory and target.
func TestSymlinkAndLinkThroughPolicy(t *testing.T) {
	ctx := context.Background()
	srv, addr := testServer(t, ServerConfig{})
	bobKey := keynote.DeterministicKey("bob")
	srv.IssueCredential(bobKey.Principal, srv.backing.Root().Ino, "RWX", "")
	bob := dialAs(t, addr, "bob")
	root := bob.Root()

	if err := bob.NFS().Symlink(ctx, root, "ln", "/pointed/at", 0o777); err != nil {
		t.Fatalf("symlink: %v", err)
	}
	la, err := bob.NFS().Lookup(ctx, root, "ln")
	if err != nil {
		t.Fatal(err)
	}
	target, err := bob.NFS().Readlink(ctx, la.Handle)
	if err != nil || target != "/pointed/at" {
		t.Errorf("readlink = %q, %v", target, err)
	}

	f, _, err := bob.WriteFile(ctx, "/orig.txt", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.NFS().Link(ctx, f.Handle, root, "alias.txt"); err != nil {
		t.Fatalf("link: %v", err)
	}

	// A read-only peer can readlink but not symlink/link.
	roKey := keynote.DeterministicKey("ro")
	cred, _ := bob.Delegate(ctx, roKey.Principal, srv.backing.Root().Ino, "RX", "")
	ro, err := DialWithCredentials(ctx, addr, roKey, cred)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.NFS().Readlink(ctx, la.Handle); err != nil {
		t.Errorf("ro readlink: %v", err)
	}
	if err := ro.NFS().Symlink(ctx, root, "evil", "/x", 0o777); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("ro symlink = %v, want EACCES", err)
	}
	if err := ro.NFS().Link(ctx, f.Handle, root, "evil2"); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("ro link = %v, want EACCES", err)
	}
	// Rename denied for read-only peers too.
	if err := ro.NFS().Rename(ctx, root, "orig.txt", root, "stolen.txt"); nfs.StatOf(err) != nfs.ErrAcces {
		t.Errorf("ro rename = %v, want EACCES", err)
	}
}

// TestExtensionProcedureEdgeCases: malformed and unusual extension
// calls fail cleanly.
func TestExtensionProcedureEdgeCases(t *testing.T) {
	ctx := context.Background()
	srv, addr := testServer(t, ServerConfig{})
	bobKey := keynote.DeterministicKey("bob")
	srv.IssueCredential(bobKey.Principal, srv.backing.Root().Ino, "RWX", "")
	bob := dialAs(t, addr, "bob")

	// Submitting junk text is an error, not a crash.
	if _, err := bob.SubmitCredentialText(ctx, "this is not keynote"); err == nil {
		t.Error("junk credential accepted")
	}
	// Submitting an unsigned assertion is rejected.
	unsigned := "Authorizer: " + string(bobKey.Principal) + "\nLicensees: \"x\"\n"
	if _, err := bob.SubmitCredentialText(ctx, unsigned); err == nil {
		t.Error("unsigned credential accepted")
	}
	// CreateWithCredential into a stale directory handle.
	stale := srv.backing.Root()
	stale.Gen += 99
	if _, _, err := bob.CreateWithCredential(ctx, stale, "f", 0o644); nfs.StatOf(err) != nfs.ErrStale {
		t.Errorf("create in stale dir = %v, want STALE", err)
	}
	// Duplicate create through the extension path.
	if _, _, err := bob.CreateWithCredential(ctx, bob.Root(), "dup", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bob.CreateWithCredential(ctx, bob.Root(), "dup", 0o644); nfs.StatOf(err) != nfs.ErrExist {
		t.Errorf("duplicate createcred = %v, want EXIST", err)
	}
	// RevokeCredential of an unknown signature reports not-found.
	admin := dialAs(t, addr, "test-admin")
	found, err := admin.RevokeCredential(ctx, "sig-ed25519-hex:00ff")
	if err != nil || found {
		t.Errorf("revoke unknown = %v, %v", found, err)
	}
}

// TestClientWalk traverses a small tree and respects per-subtree
// permissions: entries the peer cannot search are skipped, not fatal.
func TestClientWalk(t *testing.T) {
	ctx := context.Background()
	srv, addr := testServer(t, ServerConfig{})
	bobKey := keynote.DeterministicKey("bob")
	srv.IssueCredential(bobKey.Principal, srv.backing.Root().Ino, "RWX", "")
	bob := dialAs(t, addr, "bob")
	bob.MkdirPath(ctx, "/docs")
	bob.WriteFile(ctx, "/docs/a.txt", []byte("a"))
	bob.WriteFile(ctx, "/docs/b.txt", []byte("b"))
	bob.MkdirPath(ctx, "/private")
	bob.WriteFile(ctx, "/private/secret.txt", []byte("s"))

	var seen []string
	err := bob.Walk(ctx, func(path string, attr vfs.Attr) error {
		seen = append(seen, path)
		return nil
	})
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	want := map[string]bool{
		"/docs": true, "/docs/a.txt": true, "/docs/b.txt": true,
		"/private": true, "/private/secret.txt": true,
	}
	if len(seen) != len(want) {
		t.Fatalf("walk saw %v", seen)
	}
	for _, p := range seen {
		if !want[p] {
			t.Errorf("unexpected path %q", p)
		}
	}

	// A peer with access to /docs only (plus root search) walks what it
	// can see and silently skips the rest.
	docs, err := bob.ResolvePath(ctx, "/docs")
	if err != nil {
		t.Fatal(err)
	}
	carolKey := keynote.DeterministicKey("carol")
	credDocs, _ := bob.Delegate(ctx, carolKey.Principal, docs.Handle.Ino, "RX", "")
	credRoot, err := keynote.Sign(bob.Identity(), keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(carolKey.Principal),
		Conditions: SubtreeConditions(srv.backing.Root().Ino, "RX", false, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	carol, err := DialWithCredentials(ctx, addr, carolKey, credDocs, credRoot)
	if err != nil {
		t.Fatal(err)
	}
	defer carol.Close()
	seen = nil
	if err := carol.Walk(ctx, func(path string, attr vfs.Attr) error {
		seen = append(seen, path)
		return nil
	}); err != nil {
		t.Fatalf("carol Walk: %v", err)
	}
	for _, p := range seen {
		if p == "/private/secret.txt" {
			t.Error("carol's walk reached the private subtree")
		}
	}
	var sawDocsFile bool
	for _, p := range seen {
		if p == "/docs/a.txt" {
			sawDocsFile = true
		}
	}
	if !sawDocsFile {
		t.Errorf("carol's walk missed /docs/a.txt: %v", seen)
	}
}
