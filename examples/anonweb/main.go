// Anonweb: the paper's §7 future work — "new file sharing policies for
// unusual scenarios, such as the untrusted users characteristic of the
// WWW". The Web's access model (§2) is anonymous download without prior
// registration; DisCFS expresses it as one line of local policy granting
// the distinguished "anonymous" principal read access, while the same
// server keeps enforcing credentials for everyone with a key.
//
//	go run ./examples/anonweb
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"discfs"
	"discfs/internal/core"
	"discfs/internal/nfs"
	"discfs/internal/sunrpc"
)

func main() {
	ctx := context.Background()
	adminKey, _ := discfs.GenerateKey()
	store, err := discfs.NewMemStore()
	if err != nil {
		log.Fatal(err)
	}
	// Default policy (§2's first requirement): the administrator decides
	// that anonymous users may read and search, nothing else.
	policy := `Authorizer: "POLICY"
Licensees: "anonymous"
Conditions: app_domain == "DisCFS" -> "RX";
`
	srv, err := discfs.NewServer(adminKey,
		discfs.WithBacking(store),
		discfs.WithPolicyText(policy),
	)
	if err != nil {
		log.Fatal(err)
	}
	secureAddr, err := srv.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// The same server also listens on plain TCP for anonymous peers.
	plainLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.ServePlain(plainLn)
	fmt.Printf("server: secure channel on %s, anonymous TCP on %s\n\n",
		secureAddr, plainLn.Addr())

	// A keyed internal user publishes content over the secure channel.
	authorKey, _ := discfs.GenerateKey()
	srv.IssueCredential(authorKey.Principal, store.Root().Ino, "RWX", "author")
	author, err := discfs.Dial(ctx, secureAddr, authorKey)
	if err != nil {
		log.Fatal(err)
	}
	defer author.Close()
	author.WriteFile(ctx, "/index.html", []byte("<h1>DisCFS</h1><p>No accounts were created for this page.</p>\n"))
	author.WriteFile(ctx, "/draft.html", []byte("work in progress\n"))
	fmt.Println("author published /index.html and /draft.html")

	// An anonymous "browser": plain TCP, no key, no handshake.
	conn, err := net.Dial("tcp", plainLn.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	browser := nfs.NewClient(sunrpc.NewClient(conn))
	defer browser.RPC().Close()
	root, err := browser.Mount(ctx, "/discfs")
	if err != nil {
		log.Fatal(err)
	}
	ents, err := browser.ReadDirAll(ctx, root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanonymous browser lists %d public files:\n", len(ents))
	for _, e := range ents {
		fmt.Printf("  %s\n", e.Name)
	}
	attr, err := browser.Lookup(ctx, root, "index.html")
	if err != nil {
		log.Fatal(err)
	}
	page, _, err := browser.Read(ctx, attr.Handle, 0, nfs.MaxData)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanonymous GET /index.html:\n%s\n", page)

	// The anonymous principal is read-only; uploads bounce.
	if _, err := browser.Create(ctx, root, "upload.bin", 0o644); err != nil {
		fmt.Printf("anonymous upload attempt: %v\n", err)
	}
	_ = core.AnonymousPrincipal // the principal policy names, re-exported
}
