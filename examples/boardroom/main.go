// Boardroom: threshold credentials. KeyNote licensee expressions support
// k-of(...) thresholds, so DisCFS can require that *several* keys jointly
// request an operation — the paper cites "arbitrarily complex graphs of
// trust, in which credentials signed by several entities are considered
// when authorizing actions" (§4.2). Here a company's acquisition plan
// may only be read when at least two of the three board members ask
// together (their keys co-sign the request: in DisCFS terms, the
// compliance check runs with multiple requester principals).
//
// Single directors are refused; any two succeed.
//
//	go run ./examples/boardroom
package main

import (
	"fmt"
	"log"

	"discfs"
	"discfs/internal/keynote"
)

func main() {
	adminKey, _ := discfs.GenerateKey()
	store, err := discfs.NewMemStore()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := discfs.NewServer(adminKey, discfs.WithBacking(store))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// The three directors.
	carol := discfs.DeterministicKey("director-carol")
	dave := discfs.DeterministicKey("director-dave")
	erin := discfs.DeterministicKey("director-erin")

	// The admin stores the plan and issues ONE credential whose licensee
	// expression is a 2-of-3 threshold over the directors' keys.
	plan, err := srv.IssueCredential(adminKey.Principal, store.Root().Ino, "RWX", "bootstrap")
	if err != nil {
		log.Fatal(err)
	}
	_ = plan
	root := store.Root()
	attr, err := store.Create(root, "acquisition-plan.txt", 0o600)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.Write(attr.Handle, 0, []byte("Project BLUEBIRD: acquire Acme Corp for $1.\n")); err != nil {
		log.Fatal(err)
	}

	threshold, err := discfs.SignCredential(adminKey, discfs.CredentialSpec{
		Licensees:  keynote.LicenseesThreshold(2, carol.Principal, dave.Principal, erin.Principal),
		Conditions: discfs.SubtreeConditions(attr.Handle.Ino, "R", true, ""),
		Comment:    "acquisition plan: any two directors jointly",
	})
	if err != nil {
		log.Fatal(err)
	}
	session := srv.Session()
	if err := session.AddCredential(threshold); err != nil {
		log.Fatal(err)
	}
	fmt.Println("credential: 2-of(carol, dave, erin) may read the plan")
	fmt.Println()

	// Compliance checks with different requester sets. (The network
	// protocol binds one key per channel, so joint requests are checked
	// at the policy engine — the same call the server makes per
	// operation.)
	check := func(label string, who ...discfs.Principal) {
		res, err := session.Query(map[string]string{
			"app_domain": "DisCFS",
			"HANDLE":     fmt.Sprint(attr.Handle.Ino),
			"PATH":       fmt.Sprintf("/1/%d/", attr.Handle.Ino),
		}, who...)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "DENIED"
		if res.Index&4 != 0 { // R bit
			verdict = "ALLOWED"
		}
		fmt.Printf("%-24s -> %-5s (compliance value %s)\n", label, verdict, res.Value)
	}
	check("carol alone", carol.Principal)
	check("dave alone", dave.Principal)
	check("erin alone", erin.Principal)
	check("carol + dave", carol.Principal, dave.Principal)
	check("carol + erin", carol.Principal, erin.Principal)
	check("dave + erin", dave.Principal, erin.Principal)
	check("all three", carol.Principal, dave.Principal, erin.Principal)
	intruder := discfs.DeterministicKey("intruder")
	check("carol + intruder", carol.Principal, intruder.Principal)
}
