// Websales: the paper's §2 motivating example. Bob, a salesman, must give
// selected external clients advance access to product literature. The
// traditional answer — accounts, passwords, administrator tickets — does
// not scale; with DisCFS Bob just issues credentials.
//
// The example shows: per-client read-only credentials with an expiry
// condition, denial after expiry, and immediate revocation of one client
// without touching the others.
//
//	go run ./examples/websales
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"discfs"
)

func main() {
	ctx := context.Background()
	// A controllable clock demonstrates credential expiry.
	clock := time.Date(2026, 6, 1, 10, 0, 0, 0, time.UTC)
	now := func() time.Time { return clock }

	adminKey, _ := discfs.GenerateKey()
	store, err := discfs.NewMemStore()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := discfs.NewServer(adminKey,
		discfs.WithBacking(store),
		discfs.WithCacheSize(-1), // immediate effect of clock changes, for the demo
		discfs.WithClock(now),
	)
	if err != nil {
		log.Fatal(err)
	}
	addr, _ := srv.Start()
	defer srv.Close()

	// Bob is an internal user: the administrator delegates him a corner
	// of the corporate server, once.
	bobKey, _ := discfs.GenerateKey()
	srv.IssueCredential(bobKey.Principal, store.Root().Ino, "RWX", "bob's sales area")
	bob, err := discfs.Dial(ctx, addr, bobKey)
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()

	// Bob prepares the restricted product literature.
	lit, _, err := bob.MkdirPath(ctx, "/literature")
	if err != nil {
		log.Fatal(err)
	}
	bob.WriteFile(ctx, "/literature/roadmap.txt", []byte("Q3: the flux capacitor ships.\n"))
	bob.WriteFile(ctx, "/literature/pricing.txt", []byte("Introductory price: $999.\n"))
	fmt.Println("bob published 2 documents under /literature")

	// Two external clients — no accounts, unknown to the administrator.
	carolKey, _ := discfs.GenerateKey()
	dangerKey, _ := discfs.GenerateKey()

	// Credentials: read+search on /literature, valid for 30 days.
	expiry := clock.Add(30 * 24 * time.Hour).Format(time.RFC3339)
	expiryCond := `now < "` + expiry + `"`
	credCarol, err := bob.DelegateWithConditions(ctx, carolKey.Principal, lit.Handle.Ino, "RX", expiryCond, "client carol, 30 days")
	if err != nil {
		log.Fatal(err)
	}
	credDanger, err := bob.DelegateWithConditions(ctx, dangerKey.Principal, lit.Handle.Ino, "RX", expiryCond, "client danger-corp, 30 days")
	if err != nil {
		log.Fatal(err)
	}
	// Clients also need search on the path to /literature.
	walkCarol, _ := bob.DelegateWithConditions(ctx, carolKey.Principal, store.Root().Ino, "X", expiryCond, "path walk")
	walkDanger, _ := bob.DelegateWithConditions(ctx, dangerKey.Principal, store.Root().Ino, "X", expiryCond, "path walk")
	fmt.Printf("bob mailed credentials to 2 clients (expire %s)\n\n", expiry)

	carol, err := discfs.Dial(ctx, addr, carolKey)
	if err != nil {
		log.Fatal(err)
	}
	defer carol.Close()
	carol.SubmitCredentials(ctx, credCarol, walkCarol)
	data, err := carol.ReadFile(ctx, "/literature/roadmap.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("carol reads the roadmap: %s", data)

	// Clients cannot modify or create.
	if _, _, err := carol.WriteFile(ctx, "/literature/roadmap.txt", []byte("better roadmap")); err != nil {
		fmt.Printf("carol write attempt: %v\n", err)
	}

	dc, err := discfs.Dial(ctx, addr, dangerKey)
	if err != nil {
		log.Fatal(err)
	}
	defer dc.Close()
	dc.SubmitCredentials(ctx, credDanger, walkDanger)
	if _, err := dc.ReadFile(ctx, "/literature/pricing.txt"); err == nil {
		fmt.Println("danger-corp reads the pricing sheet")
	}

	// danger-corp leaks the pricing sheet; the administrator revokes
	// their key. Carol is unaffected.
	admin, err := discfs.Dial(ctx, addr, adminKey)
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	if _, err := admin.RevokeKey(ctx, dangerKey.Principal); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nadministrator revoked danger-corp's key")
	if _, err := dc.ReadFile(ctx, "/literature/pricing.txt"); err != nil {
		fmt.Printf("danger-corp read after revocation: %v\n", err)
	}
	if _, err := carol.ReadFile(ctx, "/literature/pricing.txt"); err == nil {
		fmt.Println("carol still reads fine")
	}

	// Time passes: 31 days later, Carol's credential has expired.
	clock = clock.Add(31 * 24 * time.Hour)
	if _, err := carol.ReadFile(ctx, "/literature/roadmap.txt"); err != nil {
		fmt.Printf("\n31 days later, carol's credential expired: %v\n", err)
	}
}
