// Quickstart: the paper's Figure 1 in one runnable program.
//
// An administrator runs a DisCFS server; Bob receives the 1st certificate
// (administrator → Bob) and stores a paper; Bob issues Alice the 2nd
// certificate (Bob → Alice, read-only); Alice submits the chain and reads
// the file — no account was ever created for either of them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"discfs"
)

func main() {
	// --- The server (Alice's machine in the paper's testbed). ---
	adminKey, err := discfs.GenerateKey()
	if err != nil {
		log.Fatal(err)
	}
	store, err := discfs.NewMemStore(discfs.StoreConfig{})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := discfs.NewServer(discfs.ServerConfig{
		Backing:   store,
		ServerKey: adminKey,
	})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server up at %s\n  administrator: %s\n\n", addr, adminKey.Principal.Short())

	// --- 1st certificate: administrator → Bob. ---
	bobKey, _ := discfs.GenerateKey()
	if _, err := srv.IssueCredential(bobKey.Principal, store.Root().Ino, "RWX", "admin delegates the export to bob"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1st certificate issued: admin → bob (%s), RWX on the tree\n", bobKey.Principal.Short())

	// --- Bob attaches and stores his paper. ---
	bob, err := discfs.Dial(addr, bobKey)
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()
	paper := []byte("DisCFS: credentials identify the files, the users, and the conditions of access.\n")
	attr, _, err := bob.WriteFile("/paper.txt", paper)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob stored /paper.txt (inode %d)\n\n", attr.Handle.Ino)

	// --- 2nd certificate: Bob → Alice (read + search). Bob can mail
	// this text to Alice; no administrator is involved. ---
	aliceKey, _ := discfs.GenerateKey()
	cred, err := bob.Delegate(aliceKey.Principal, store.Root().Ino, "RX", "bob lets alice read his paper")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2nd certificate issued: bob → alice (%s), RX\n", aliceKey.Principal.Short())
	fmt.Printf("--- credential text (as mailed to alice) ---\n%s---\n\n", cred.Source)

	// --- Alice attaches. Without credentials: mode 000, access denied. ---
	alice, err := discfs.Dial(addr, aliceKey)
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	rootAttr, _ := alice.NFS().GetAttr(alice.Root())
	fmt.Printf("alice attached; root mode without credentials: %03o\n", rootAttr.Mode)
	if _, err := alice.ReadFile("/paper.txt"); err != nil {
		fmt.Printf("alice read before submitting credentials: %v\n", err)
	}

	// --- Alice submits the credential and reads. ---
	if _, err := alice.SubmitCredentials(cred); err != nil {
		log.Fatal(err)
	}
	rootAttr, _ = alice.NFS().GetAttr(alice.Root())
	fmt.Printf("alice submitted the credential; root mode now: %03o\n", rootAttr.Mode)
	data, err := alice.ReadFile("/paper.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice reads: %s", data)

	// --- Alice's grant is read-only: writes are refused. ---
	if _, err := alice.NFS().Write(attr.Handle, 0, []byte("defaced")); err != nil {
		fmt.Printf("alice write attempt: %v\n", err)
	}

	st := srv.Stats()
	fmt.Printf("\nserver stats: %d compliance queries, %d cache hits, %d decisions (%d denied)\n",
		st.Queries, st.CacheHits, st.Decisions, st.Denials)
}
