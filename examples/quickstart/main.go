// Quickstart: the paper's Figure 1 in one runnable program, written
// against the v2 API — contexts on every operation, functional options,
// streaming file I/O, and typed errors.
//
// An administrator runs a DisCFS server; Bob receives the 1st certificate
// (administrator → Bob) and stores a paper; Bob issues Alice the 2nd
// certificate (Bob → Alice, read-only); Alice submits the chain and reads
// the file — no account was ever created for either of them.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"discfs"
)

func main() {
	// Every operation below runs under this context; a deadline here
	// bounds the whole session, RPCs included.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// --- The server (Alice's machine in the paper's testbed). ---
	adminKey, err := discfs.GenerateKey()
	if err != nil {
		log.Fatal(err)
	}
	store, err := discfs.NewMemStore()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := discfs.NewServer(adminKey,
		discfs.WithBacking(store),
		discfs.WithCacheSize(128), // the paper's configuration
	)
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server up at %s\n  administrator: %s\n\n", addr, adminKey.Principal.Short())

	// --- 1st certificate: administrator → Bob. ---
	bobKey, _ := discfs.GenerateKey()
	if _, err := srv.IssueCredential(bobKey.Principal, store.Root().Ino, "RWX", "admin delegates the export to bob"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1st certificate issued: admin → bob (%s), RWX on the tree\n", bobKey.Principal.Short())

	// --- Bob attaches and streams his paper in. ---
	bob, err := discfs.Dial(ctx, addr, bobKey)
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()
	f, err := bob.Open(ctx, "/paper.txt", os.O_CREATE|os.O_WRONLY)
	if err != nil {
		log.Fatal(err)
	}
	manuscript := strings.NewReader("DisCFS: credentials identify the files, the users, and the conditions of access.\n")
	if _, err := io.Copy(f, manuscript); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("bob streamed /paper.txt (inode %d)\n\n", f.Handle().Ino)

	// --- 2nd certificate: Bob → Alice (read + search). Bob can mail
	// this text to Alice; no administrator is involved. ---
	aliceKey, _ := discfs.GenerateKey()
	cred, err := bob.Delegate(ctx, aliceKey.Principal, store.Root().Ino, "RX", "bob lets alice read his paper")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2nd certificate issued: bob → alice (%s), RX\n", aliceKey.Principal.Short())
	fmt.Printf("--- credential text (as mailed to alice) ---\n%s---\n\n", cred.Source)

	// --- Alice attaches. Without credentials: mode 000 and a typed
	// denial that matches both ErrAccessDenied and ErrNoCredentials. ---
	alice, err := discfs.Dial(ctx, addr, aliceKey)
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	rootAttr, _ := alice.NFS().GetAttr(ctx, alice.Root())
	fmt.Printf("alice attached; root mode without credentials: %03o\n", rootAttr.Mode)
	if _, err := alice.ReadFile(ctx, "/paper.txt"); errors.Is(err, discfs.ErrNoCredentials) {
		fmt.Println("alice read before submitting credentials: denied (no credentials submitted)")
	}

	// --- Alice submits the credential and reads. ---
	if _, err := alice.SubmitCredentials(ctx, cred); err != nil {
		log.Fatal(err)
	}
	rootAttr, _ = alice.NFS().GetAttr(ctx, alice.Root())
	fmt.Printf("alice submitted the credential; root mode now: %03o\n", rootAttr.Mode)
	data, err := alice.ReadFile(ctx, "/paper.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice reads: %s", data)

	// --- Alice's grant is read-only: writes fail with ErrAccessDenied. ---
	if _, _, err := alice.WriteFile(ctx, "/paper.txt", []byte("defaced")); errors.Is(err, discfs.ErrAccessDenied) {
		fmt.Println("alice write attempt: access denied (as issued: read-only)")
	}

	st := srv.Stats()
	fmt.Printf("\nserver stats: %d compliance queries, %d cache hits, %d decisions (%d denied)\n",
		st.Queries, st.CacheHits, st.Decisions, st.Denials)
}
