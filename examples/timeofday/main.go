// Timeofday: the paper contrasts DisCFS with Exokernel capabilities by
// noting its access policies "can consider factors such as time-of-day,
// so that, for example, leisure-related files may not be available
// during office hours" (§3.1). This example encodes exactly that policy
// in a credential's Conditions field and shows it flip as the clock
// moves.
//
//	go run ./examples/timeofday
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"discfs"
)

func main() {
	ctx := context.Background()
	clock := time.Date(2026, 6, 1, 8, 0, 0, 0, time.UTC)
	adminKey, _ := discfs.GenerateKey()
	store, err := discfs.NewMemStore()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := discfs.NewServer(adminKey,
		discfs.WithBacking(store),
		discfs.WithCacheSize(-1), // re-evaluate conditions on every access, for the demo
		discfs.WithClock(func() time.Time { return clock }),
	)
	if err != nil {
		log.Fatal(err)
	}
	addr, _ := srv.Start()
	defer srv.Close()

	// The office admin stores the leisure content.
	bossKey, _ := discfs.GenerateKey()
	srv.IssueCredential(bossKey.Principal, store.Root().Ino, "RWX", "boss")
	boss, err := discfs.Dial(ctx, addr, bossKey)
	if err != nil {
		log.Fatal(err)
	}
	defer boss.Close()
	fun, _, err := boss.MkdirPath(ctx, "/leisure")
	if err != nil {
		log.Fatal(err)
	}
	boss.WriteFile(ctx, "/leisure/crossword.txt", []byte("1 across: trust-management system (7)\n"))

	// The employee's credential: read+search on /leisure, but only
	// outside office hours (09:00–17:00), plus unconditional path walk.
	empKey, _ := discfs.GenerateKey()
	offHours := `@hour < 9 || @hour >= 17`
	credFun, err := boss.DelegateWithConditions(ctx, empKey.Principal, fun.Handle.Ino, "RX", offHours, "leisure outside office hours")
	if err != nil {
		log.Fatal(err)
	}
	credWalk, err := discfs.SignCredential(boss.Identity(), discfs.CredentialSpec{
		Licensees:  discfs.LicenseesOr(empKey.Principal),
		Conditions: discfs.SubtreeConditions(store.Root().Ino, "X", false, ""),
	})
	if err != nil {
		log.Fatal(err)
	}

	emp, err := discfs.Dial(ctx, addr, empKey)
	if err != nil {
		log.Fatal(err)
	}
	defer emp.Close()
	emp.SubmitCredentials(ctx, credFun, credWalk)

	fmt.Println("credential condition:", offHours)
	fmt.Println()
	for _, h := range []int{8, 9, 12, 16, 17, 22} {
		clock = time.Date(2026, 6, 1, h, 0, 0, 0, time.UTC)
		_, err := emp.ReadFile(ctx, "/leisure/crossword.txt")
		verdict := "ALLOWED"
		if err != nil {
			verdict = "DENIED "
		}
		fmt.Printf("%02d:00  crossword access: %s\n", h, verdict)
	}
}
