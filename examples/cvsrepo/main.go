// Cvsrepo: the paper's §4.2 war story. While writing the paper, its five
// authors had no common Unix group on the host carrying the CVS
// repository, so the repository had to be made world-writable. "If the
// central server supported DisCFS then the owner of the repository would
// simply need to issue read-write certificates to all the other
// authors."
//
// This example is that fix: the repository owner issues RWX certificates
// to four co-authors; everyone commits; the rest of the world stays
// locked out.
//
//	go run ./examples/cvsrepo
package main

import (
	"context"
	"fmt"
	"log"

	"discfs"
)

func main() {
	ctx := context.Background()
	adminKey, _ := discfs.GenerateKey()
	store, err := discfs.NewMemStore()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := discfs.NewServer(adminKey, discfs.WithBacking(store))
	if err != nil {
		log.Fatal(err)
	}
	addr, _ := srv.Start()
	defer srv.Close()

	// miltchev owns the repository.
	ownerKey, _ := discfs.GenerateKey()
	srv.IssueCredential(ownerKey.Principal, store.Root().Ino, "RWX", "repository owner")
	owner, err := discfs.Dial(ctx, addr, ownerKey)
	if err != nil {
		log.Fatal(err)
	}
	defer owner.Close()

	repo, _, err := owner.MkdirPath(ctx, "/cvsroot")
	if err != nil {
		log.Fatal(err)
	}
	owner.WriteFile(ctx, "/cvsroot/paper.tex,v", []byte("head 1.1;\n1.1 log: initial import\n"))
	fmt.Println("miltchev created /cvsroot and imported paper.tex,v")

	// Read-write certificates for the co-authors — no group, no
	// administrator, no world-writable repository.
	coauthors := []string{"vassilip", "sotiris", "angelos", "jms"}
	keys := make(map[string]*discfs.KeyPair, len(coauthors))
	for _, name := range coauthors {
		k, _ := discfs.GenerateKey()
		keys[name] = k
		repoCred, err := owner.Delegate(ctx, k.Principal, repo.Handle.Ino, "RWX", "co-author "+name)
		if err != nil {
			log.Fatal(err)
		}
		walkCred, err := discfs.SignCredential(owner.Identity(), discfs.CredentialSpec{
			Licensees:  discfs.LicenseesOr(k.Principal),
			Conditions: discfs.SubtreeConditions(store.Root().Ino, "X", false, ""),
			Comment:    "path walk for " + name,
		})
		if err != nil {
			log.Fatal(err)
		}
		// In real life these travel by email; here each author submits
		// their own pair below.
		saveFor(name, repoCred, walkCred)
	}
	fmt.Printf("miltchev issued read-write certificates to %d co-authors\n\n", len(coauthors))

	// Every co-author commits a revision.
	for i, name := range coauthors {
		c, err := discfs.Dial(ctx, addr, keys[name])
		if err != nil {
			log.Fatal(err)
		}
		creds := load(name)
		if _, err := c.SubmitCredentials(ctx, creds...); err != nil {
			log.Fatal(err)
		}
		rev := fmt.Sprintf("1.%d log: edits by %s\n", i+2, name)
		old, err := c.ReadFile(ctx, "/cvsroot/paper.tex,v")
		if err != nil {
			log.Fatalf("%s checkout: %v", name, err)
		}
		if _, _, err := c.WriteFile(ctx, "/cvsroot/paper.tex,v", append(old, rev...)); err != nil {
			log.Fatalf("%s commit: %v", name, err)
		}
		fmt.Printf("%s committed revision 1.%d\n", name, i+2)
		c.Close()
	}

	// An outsider (the rest of the world) gets nothing — unlike the
	// world-writable workaround the authors actually suffered.
	nobodyKey, _ := discfs.GenerateKey()
	nobody, err := discfs.Dial(ctx, addr, nobodyKey)
	if err != nil {
		log.Fatal(err)
	}
	defer nobody.Close()
	if _, err := nobody.ReadFile(ctx, "/cvsroot/paper.tex,v"); err != nil {
		fmt.Printf("\noutsider checkout attempt: %v\n", err)
	}

	final, _ := owner.ReadFile(ctx, "/cvsroot/paper.tex,v")
	fmt.Printf("\nfinal ,v file:\n%s", final)
}

// saveFor/load stand in for the email hop of credentials.
var mailbox = map[string][]*discfs.Credential{}

func saveFor(name string, creds ...*discfs.Credential) { mailbox[name] = creds }
func load(name string) []*discfs.Credential            { return mailbox[name] }
