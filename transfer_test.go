package discfs_test

import (
	"bytes"
	"context"
	"os"
	"testing"

	"discfs"
)

// startTransferServer brings up a server with the given transfer bound
// (0 = default 512 KiB) and an RWX-credentialed user key.
func startTransferServer(t *testing.T, serverMax int, wb bool) (string, *discfs.KeyPair) {
	t.Helper()
	adminKey := discfs.DeterministicKey("xfer-admin")
	userKey := discfs.DeterministicKey("xfer-user")
	store, err := discfs.NewMemStore()
	if err != nil {
		t.Fatal(err)
	}
	opts := []discfs.ServerOption{discfs.WithBacking(store)}
	if serverMax != 0 {
		opts = append(opts, discfs.WithServerMaxTransfer(serverMax))
	}
	if wb {
		opts = append(opts, discfs.WithServerWriteBehind(0, 0))
	}
	srv, err := discfs.NewServer(adminKey, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.IssueCredential(userKey.Principal, store.Root().Ino, "RWX", "xfer user"); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, userKey
}

// TestTransferSizeInterop is the end-to-end old/new matrix: every
// combination of a v2-pinned (8 KiB) and a large-transfer (512 KiB)
// peer must interoperate byte-exactly through the full stack — secure
// channel, negotiation, data cache, write-behind server.
func TestTransferSizeInterop(t *testing.T) {
	ctx := context.Background()
	data := make([]byte, 2<<20+4321)
	for i := range data {
		data[i] = byte(i*37 + i>>9)
	}
	for _, tc := range []struct {
		name                 string
		serverMax            int
		writerMax, readerMax int
	}{
		{"large writer, v2 reader", 0, 0, 8192},
		{"v2 writer, large reader", 0, 8192, 0},
		{"v2 server clamps both", 8192, 0, 0},
		{"large both", 0, 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			addr, userKey := startTransferServer(t, tc.serverMax, true)

			wopts := []discfs.ClientOption{}
			if tc.writerMax != 0 {
				wopts = append(wopts, discfs.WithMaxTransfer(tc.writerMax))
			}
			w, err := discfs.Dial(ctx, addr, userKey, wopts...)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			f, err := w.Open(ctx, "/big.dat", os.O_CREATE|os.O_WRONLY)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(data); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			ropts := []discfs.ClientOption{}
			if tc.readerMax != 0 {
				ropts = append(ropts, discfs.WithMaxTransfer(tc.readerMax))
			}
			r, err := discfs.Dial(ctx, addr, userKey, ropts...)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			got, err := r.ReadFile(ctx, "/big.dat")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("cross-size transfer corrupted")
			}

			if tc.serverMax == 8192 {
				if w.MaxTransfer() != 8192 || r.MaxTransfer() != 8192 {
					t.Errorf("v2 server granted %d/%d, want 8192", w.MaxTransfer(), r.MaxTransfer())
				}
			}
		})
	}
}

// TestNegotiatedTransferDefault: a default dial against a default
// server lands on DefaultMaxTransfer.
func TestNegotiatedTransferDefault(t *testing.T) {
	ctx := context.Background()
	addr, userKey := startTransferServer(t, 0, false)
	c, err := discfs.Dial(ctx, addr, userKey)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.MaxTransfer() != discfs.DefaultMaxTransfer {
		t.Errorf("negotiated %d, want %d", c.MaxTransfer(), discfs.DefaultMaxTransfer)
	}
}
