// Benchmarks regenerating every figure of the paper's evaluation (§6).
//
// Figures 7-11 are the five Bonnie phases; Figure 12 is the
// kernel-source search; the Micro benchmarks quantify the "primitive
// operations in the context of our access control mechanism" the paper
// describes. Each figure runs over the paper's three configurations:
// FFS (local), CFS-NE (user-level NFS, no credentials) and DisCFS.
//
//	go test -bench=. -benchmem
//
// cmd/discfs-bench prints the same results as the paper's bar charts.
package discfs_test

import (
	"context"
	"fmt"
	"net"
	"testing"

	"discfs"
	"discfs/internal/bench"
	"discfs/internal/core"
	"discfs/internal/ffs"
	"discfs/internal/keynote"
	"discfs/internal/secchan"
	"discfs/internal/vfs"
)

// benchFileSize is the Bonnie file size per iteration. The paper used
// 100 MB against a 9.6 GB disk; 4 MiB keeps iterations short while
// exceeding every cache in this stack.
const benchFileSize = 4 << 20

// withSetups runs the benchmark body once per filesystem configuration.
// DisCFS runs twice — with the client data cache (the default) and with
// WithNoDataCache — so every figure reports the cache's win.
func withSetups(b *testing.B, fn func(b *testing.B, s *bench.Setup)) {
	b.Helper()
	for _, mk := range []func() (*bench.Setup, error){
		bench.SetupFFS, bench.SetupCFSNE, bench.SetupDisCFS, bench.SetupDisCFSNoCache,
	} {
		s, err := mk()
		if err != nil {
			b.Fatalf("setup: %v", err)
		}
		b.Run(s.Name, func(b *testing.B) {
			fn(b, s)
		})
		s.Close()
	}
}

// scratch creates (or reuses — the harness may re-enter with a larger
// b.N) the Bonnie file, pre-filled when fill is true.
func scratch(b *testing.B, s *bench.Setup, fill bool) vfs.Handle {
	b.Helper()
	attr, err := s.FS.Lookup(s.FS.Root(), "bench.dat")
	if err != nil {
		attr, err = s.FS.Create(s.FS.Root(), "bench.dat", 0o644)
		if err != nil {
			b.Fatalf("create: %v", err)
		}
	}
	if fill {
		if err := bench.OutputBlock(s.FS, attr.Handle, benchFileSize); err != nil {
			b.Fatalf("prefill: %v", err)
		}
	}
	return attr.Handle
}

// BenchmarkFig7_SeqOutputChar reproduces Figure 7: Bonnie Sequential
// Output (Char) — per-character writes through a stdio-style buffer.
func BenchmarkFig7_SeqOutputChar(b *testing.B) {
	withSetups(b, func(b *testing.B, s *bench.Setup) {
		h := scratch(b, s, false)
		b.SetBytes(benchFileSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bench.OutputChar(s.FS, h, benchFileSize); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig8_SeqOutputBlock reproduces Figure 8: Bonnie Sequential
// Output (Block) — 8 KiB block writes.
func BenchmarkFig8_SeqOutputBlock(b *testing.B) {
	withSetups(b, func(b *testing.B, s *bench.Setup) {
		h := scratch(b, s, false)
		b.SetBytes(benchFileSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bench.OutputBlock(s.FS, h, benchFileSize); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig9_SeqRewrite reproduces Figure 9: Bonnie Sequential Output
// (Rewrite) — read each block, dirty it, write it back.
func BenchmarkFig9_SeqRewrite(b *testing.B) {
	withSetups(b, func(b *testing.B, s *bench.Setup) {
		h := scratch(b, s, true)
		b.SetBytes(benchFileSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bench.Rewrite(s.FS, h, benchFileSize); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig10_SeqInputChar reproduces Figure 10: Bonnie Sequential
// Input (Char) — per-character reads through the buffer.
func BenchmarkFig10_SeqInputChar(b *testing.B) {
	withSetups(b, func(b *testing.B, s *bench.Setup) {
		h := scratch(b, s, true)
		b.SetBytes(benchFileSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bench.InputChar(s.FS, h, benchFileSize); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig11_SeqInputBlock reproduces Figure 11: Bonnie Sequential
// Input (Block) — 8 KiB block reads.
func BenchmarkFig11_SeqInputBlock(b *testing.B) {
	withSetups(b, func(b *testing.B, s *bench.Setup) {
		h := scratch(b, s, true)
		b.SetBytes(benchFileSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bench.InputBlock(s.FS, h, benchFileSize); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// searchSpec scales Figure 12's tree for benchmark iterations: a few
// hundred files rather than the full kernel tree, walked completely on
// every iteration (the paper's cache of 128 policy results is configured
// in the DisCFS setup).
var searchSpec = bench.TreeSpec{Subsystems: 8, FilesPerDir: 24, MeanFileSize: 8 * 1024, Seed: 2001}

// BenchmarkFig12_Search reproduces Figure 12: walk every .c/.h file of a
// kernel source tree and count lines, words and bytes.
func BenchmarkFig12_Search(b *testing.B) {
	withSetups(b, func(b *testing.B, s *bench.Setup) {
		// Generate once per setup; the harness re-enters with larger b.N.
		if _, err := s.Populate.Lookup(s.Populate.Root(), "sys"); err != nil {
			if _, _, err := bench.GenerateTree(s.Populate, s.Populate.Root(), searchSpec); err != nil {
				b.Fatalf("tree: %v", err)
			}
		}
		files := searchSpec.Subsystems * searchSpec.FilesPerDir
		warm, err := bench.Search(s.FS, s.FS.Root())
		if err != nil {
			b.Fatalf("warmup search: %v", err)
		}
		if warm.Files != files {
			b.Fatalf("walk saw %d files, want %d", warm.Files, files)
		}
		b.SetBytes(warm.Bytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := bench.Search(s.FS, s.FS.Root())
			if err != nil {
				b.Fatal(err)
			}
			if res.Files != files {
				b.Fatalf("walk saw %d files, want %d", res.Files, files)
			}
		}
	})
}

// ---- micro-benchmarks (§6: "primitive operations in the context of
// our access control mechanism") ----

// benchCredential builds a two-link chain: admin→bob on handle 42.
func benchCredential(b *testing.B) (*keynote.KeyPair, *keynote.Assertion) {
	b.Helper()
	admin := keynote.DeterministicKey("bench-admin")
	bob := keynote.DeterministicKey("bench-bob")
	cred, err := keynote.Sign(admin, keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(bob.Principal),
		Conditions: core.SubtreeConditions(42, "RWX", true, ""),
		Comment:    "bench credential",
	})
	if err != nil {
		b.Fatal(err)
	}
	return admin, cred
}

// BenchmarkMicro_CredentialParse measures assertion parsing alone.
func BenchmarkMicro_CredentialParse(b *testing.B) {
	_, cred := benchCredential(b)
	src := cred.Source
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := keynote.ParseAssertion(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_CredentialVerify measures parse + Ed25519 signature
// verification, the cost of each credential submission.
func BenchmarkMicro_CredentialVerify(b *testing.B) {
	_, cred := benchCredential(b)
	src := cred.Source
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := keynote.ParseAssertion(src)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_CredentialSign measures composing and signing a
// delegation credential (what Delegate does).
func BenchmarkMicro_CredentialSign(b *testing.B) {
	admin := keynote.DeterministicKey("bench-admin")
	bob := keynote.DeterministicKey("bench-bob")
	spec := keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(bob.Principal),
		Conditions: core.SubtreeConditions(42, "RWX", true, ""),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := keynote.Sign(admin, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_ComplianceQuery measures one full KeyNote evaluation
// through a two-credential delegation chain — the uncached per-operation
// policy cost.
func BenchmarkMicro_ComplianceQuery(b *testing.B) {
	admin, cred := benchCredential(b)
	bob := keynote.DeterministicKey("bench-bob")
	session, err := keynote.NewSession(core.Values)
	if err != nil {
		b.Fatal(err)
	}
	pol, err := keynote.NewPolicy(keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(admin.Principal),
		Conditions: `app_domain == "DisCFS" -> _MAX_TRUST;`,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := session.AddPolicy(pol); err != nil {
		b.Fatal(err)
	}
	if err := session.AddCredential(cred); err != nil {
		b.Fatal(err)
	}
	attrs := map[string]string{
		"app_domain": "DisCFS",
		"HANDLE":     "42",
		"PATH":       "/1/42/",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := session.Query(attrs, bob.Principal)
		if err != nil {
			b.Fatal(err)
		}
		if res.Value != "RWX" {
			b.Fatalf("value = %s", res.Value)
		}
	}
}

// BenchmarkMicro_SecchanHandshake measures attach-time key exchange —
// the paper's IKE/IPsec connection setup.
func BenchmarkMicro_SecchanHandshake(b *testing.B) {
	serverKey := keynote.DeterministicKey("hs-server")
	clientKey := keynote.DeterministicKey("hs-client")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			go func(raw net.Conn) {
				conn, err := secchan.Server(raw, secchan.Config{Identity: serverKey})
				if err == nil {
					conn.Close()
				} else {
					raw.Close()
				}
			}(raw)
		}
	}()
	addr := ln.Addr().String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := secchan.Dial(addr, secchan.Config{Identity: clientKey})
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

// BenchmarkMicro_NullRPC measures a full RPC round-trip through each
// remote stack (CFS-NE: plain TCP; DisCFS: AES-GCM secure channel) —
// the paper's observation that DisCFS "was constrained by the same
// factors, such as remote RPC times".
func BenchmarkMicro_NullRPC(b *testing.B) {
	for _, mk := range []func() (*bench.Setup, error){bench.SetupCFSNE, bench.SetupDisCFS} {
		s, err := mk()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(s.Name, func(b *testing.B) {
			// A GETATTR on the root is the cheapest authenticated call.
			root := s.FS.Root()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.FS.GetAttr(root); err != nil {
					b.Fatal(err)
				}
			}
		})
		s.Close()
	}
}

// BenchmarkMicro_SubmitCredential measures submitting a pre-signed
// credential to a live server: RPC round-trip + parse + signature
// verification + session insert — the cattach utility's core step.
func BenchmarkMicro_SubmitCredential(b *testing.B) {
	ctx := context.Background()
	store, err := discfs.NewMemStore()
	if err != nil {
		b.Fatal(err)
	}
	adminKey := keynote.DeterministicKey("submit-admin")
	srv, err := core.NewServer(core.ServerConfig{Backing: store, ServerKey: adminKey})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Start()
	if err != nil {
		b.Fatal(err)
	}
	bobKey := keynote.DeterministicKey("submit-bob")
	client, err := core.Dial(ctx, addr, bobKey)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	// Pre-sign unique credentials so each submission exercises the full
	// verify+insert path rather than the idempotent dedup.
	creds := make([]string, b.N)
	for i := range creds {
		cred, err := keynote.Sign(adminKey, keynote.AssertionSpec{
			Licensees:  keynote.LicenseesOr(bobKey.Principal),
			Conditions: core.SubtreeConditions(uint64(1000+i), "R", true, ""),
		})
		if err != nil {
			b.Fatal(err)
		}
		creds[i] = cred.Source
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.SubmitCredentialText(ctx, creds[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_DecisionCached measures the served policy check when
// the decision cache hits — the configuration of every Bonnie figure.
func BenchmarkMicro_DecisionCached(b *testing.B) {
	s, err := bench.SetupDisCFS()
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	attr, err := s.FS.Create(s.FS.Root(), "cached", 0o644)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.FS.Write(attr.Handle, 0, []byte("warm")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.FS.Read(attr.Handle, 0, 4); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(float64(st.CacheHits)/float64(st.CacheHits+st.CacheMisses+1)*100, "cachehit%")
}

// ---- ablations: the design choices DESIGN.md calls out ----

// BenchmarkAblation_PolicyCache contrasts served reads with the decision
// cache disabled vs the paper's 128-entry configuration — the basis of
// the paper's claim that "the overhead incurred by the KeyNote credential
// lookups when using cached policy results is minimal".
func BenchmarkAblation_PolicyCache(b *testing.B) {
	ctx := context.Background()
	for _, cfg := range []struct {
		name string
		size int
	}{
		{"Disabled", -1},
		{"Cache128", 128},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			store, err := discfs.NewMemStore()
			if err != nil {
				b.Fatal(err)
			}
			adminKey := keynote.DeterministicKey("abl-admin")
			srv, err := core.NewServer(core.ServerConfig{
				Backing: store, ServerKey: adminKey, CacheSize: cfg.size,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			userKey := keynote.DeterministicKey("abl-user")
			if _, err := srv.IssueCredential(userKey.Principal, store.Root().Ino, "RWX", ""); err != nil {
				b.Fatal(err)
			}
			addr, err := srv.Start()
			if err != nil {
				b.Fatal(err)
			}
			client, err := core.Dial(ctx, addr, userKey)
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			attr, _, err := client.WriteFile(ctx, "/f", []byte("payload"))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := client.NFS().Read(ctx, attr.Handle, 0, 7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_SessionCredentials shows compliance-query cost as a
// function of the number of credentials in the server's session — the
// KeyNote engine considers every assertion, so sessions with thousands
// of per-file creator credentials pay linearly (and the decision cache
// absorbs it).
func BenchmarkAblation_SessionCredentials(b *testing.B) {
	admin := keynote.DeterministicKey("abl-admin")
	user := keynote.DeterministicKey("abl-user")
	for _, n := range []int{1, 64, 512} {
		b.Run(fmt.Sprintf("creds=%d", n), func(b *testing.B) {
			session, err := keynote.NewSession(core.Values)
			if err != nil {
				b.Fatal(err)
			}
			pol, err := keynote.NewPolicy(keynote.AssertionSpec{
				Licensees:  keynote.LicenseesOr(admin.Principal),
				Conditions: `app_domain == "DisCFS" -> _MAX_TRUST;`,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := session.AddPolicy(pol); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				cred, err := keynote.Sign(admin, keynote.AssertionSpec{
					Licensees:  keynote.LicenseesOr(user.Principal),
					Conditions: core.SubtreeConditions(uint64(100+i), "RWX", true, ""),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := session.AddCredential(cred); err != nil {
					b.Fatal(err)
				}
			}
			attrs := map[string]string{
				"app_domain": "DisCFS", "HANDLE": "100", "PATH": "/1/100/",
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := session.Query(attrs, user.Principal)
				if err != nil {
					b.Fatal(err)
				}
				if res.Value != "RWX" {
					b.Fatalf("value = %s", res.Value)
				}
			}
		})
	}
}

// BenchmarkAblation_ChainLength shows compliance-query cost as the
// delegation chain deepens — the paper contrasts DisCFS's
// arbitrary-length chains with the Exokernel's 8-level limit.
func BenchmarkAblation_ChainLength(b *testing.B) {
	admin := keynote.DeterministicKey("abl-admin")
	for _, depth := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			session, err := keynote.NewSession(core.Values)
			if err != nil {
				b.Fatal(err)
			}
			pol, err := keynote.NewPolicy(keynote.AssertionSpec{
				Licensees:  keynote.LicenseesOr(admin.Principal),
				Conditions: `app_domain == "DisCFS" -> _MAX_TRUST;`,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := session.AddPolicy(pol); err != nil {
				b.Fatal(err)
			}
			prev := admin
			var last *keynote.KeyPair
			for i := 0; i < depth; i++ {
				last = keynote.DeterministicKey(fmt.Sprintf("abl-chain-%d", i))
				cred, err := keynote.Sign(prev, keynote.AssertionSpec{
					Licensees:  keynote.LicenseesOr(last.Principal),
					Conditions: core.SubtreeConditions(42, "RWX", true, ""),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := session.AddCredential(cred); err != nil {
					b.Fatal(err)
				}
				prev = last
			}
			attrs := map[string]string{
				"app_domain": "DisCFS", "HANDLE": "42", "PATH": "/1/42/",
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := session.Query(attrs, last.Principal)
				if err != nil {
					b.Fatal(err)
				}
				if res.Value != "RWX" {
					b.Fatalf("value = %s", res.Value)
				}
			}
		})
	}
}

// BenchmarkAblation_DiskModel re-runs the block-write phase on an FFS
// configured with a 2001-era disk model (Quantum Fireball-class: ~8 ms
// seek, ~20 MB/s transfer). It quantifies the "threats to validity" note
// in EXPERIMENTS.md: the huge FFS lead over the NFS stacks in Figures
// 7-11 comes largely from our RAM-backed device; with a period disk the
// local filesystem lands in the same tens-of-MB/s band the paper's FFS
// bars show.
func BenchmarkAblation_DiskModel(b *testing.B) {
	const size = 1 << 20
	for _, cfg := range []struct {
		name  string
		model ffs.DiskModel
	}{
		{"RAM", ffs.DiskModel{}},
		{"Fireball2001", ffs.DiskModel{BytesPerSecond: 20 << 20}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			fs, err := ffs.New(ffs.Config{
				BlockSize: 8192, NumBlocks: 1 << 14, Disk: cfg.model,
			})
			if err != nil {
				b.Fatal(err)
			}
			attr, err := fs.Create(fs.Root(), "d", 0o644)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bench.OutputBlock(fs, attr.Handle, size); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ClientAttrCache contrasts the Figure 12 search run
// through a raw NFS client vs one with the kernel-style attribute/lookup
// cache (acregmin-style TTL). Modern NFS clients never ship without
// this; the ablation shows why.
func BenchmarkAblation_ClientAttrCache(b *testing.B) {
	for _, cached := range []bool{false, true} {
		name := "Raw"
		if cached {
			name = "AttrCache"
		}
		b.Run(name, func(b *testing.B) {
			s, err := bench.SetupCFSNE()
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			spec := bench.TreeSpec{Subsystems: 6, FilesPerDir: 16, MeanFileSize: 4096, Seed: 3}
			if _, _, err := bench.GenerateTree(s.Populate, s.Populate.Root(), spec); err != nil {
				b.Fatal(err)
			}
			fsys := s.FS
			if cached {
				// Same server, fresh connection wrapped in the caching
				// client (SetupCFSNE does not expose its client).
				cc, root, closeFn, err := bench.DialCFSNECached(s)
				if err != nil {
					b.Fatal(err)
				}
				defer closeFn()
				fsys = bench.NewRemoteFS(cc, root)
			}
			if _, err := bench.Search(fsys, fsys.Root()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.Search(fsys, fsys.Root()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
