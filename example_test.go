package discfs_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"os"

	"discfs"
)

// Example_delegation walks the paper's Figure 1: the administrator
// delegates to Bob, Bob stores a file and delegates read access to
// Alice, Alice presents the credential and reads — no accounts anywhere.
func Example_delegation() {
	ctx := context.Background()
	adminKey := discfs.DeterministicKey("ex-admin")
	store, err := discfs.NewMemStore()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := discfs.NewServer(adminKey, discfs.WithBacking(store))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Start()
	if err != nil {
		log.Fatal(err)
	}

	// 1st certificate: administrator → Bob.
	bobKey := discfs.DeterministicKey("ex-bob")
	if _, err := srv.IssueCredential(bobKey.Principal, store.Root().Ino, "RWX", "bob"); err != nil {
		log.Fatal(err)
	}

	bob, err := discfs.Dial(ctx, addr, bobKey)
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()
	if _, _, err := bob.WriteFile(ctx, "/paper.txt", []byte("shared by credential")); err != nil {
		log.Fatal(err)
	}

	// 2nd certificate: Bob → Alice (read + search on the tree).
	aliceKey := discfs.DeterministicKey("ex-alice")
	cred, err := bob.Delegate(ctx, aliceKey.Principal, store.Root().Ino, "RX", "for alice")
	if err != nil {
		log.Fatal(err)
	}

	alice, err := discfs.DialWithCredentials(ctx, addr, aliceKey, cred)
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	data, err := alice.ReadFile(ctx, "/paper.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))

	// Alice's grant has no write bit: the denial is a typed error.
	if _, _, err := alice.WriteFile(ctx, "/paper.txt", []byte("vandalism")); errors.Is(err, discfs.ErrAccessDenied) {
		fmt.Println("write denied")
	}
	// Output:
	// shared by credential
	// write denied
}

// ExampleClient_Open streams a file through the io.Reader/io.Writer
// interfaces: writes chunk over the NFS wire as they happen, and reads
// never buffer the whole file.
func ExampleClient_Open() {
	ctx := context.Background()
	adminKey := discfs.DeterministicKey("ex-stream-admin")
	store, err := discfs.NewMemStore()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := discfs.NewServer(adminKey, discfs.WithBacking(store))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Start()
	if err != nil {
		log.Fatal(err)
	}
	c, err := discfs.Dial(ctx, addr, adminKey)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	w, err := c.Open(ctx, "/big.log", os.O_CREATE|os.O_WRONLY)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(w, "line one")
	fmt.Fprintln(w, "line two")
	w.Close()

	r, err := c.Open(ctx, "/big.log", os.O_RDONLY)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	if _, err := io.Copy(os.Stdout, r); err != nil {
		log.Fatal(err)
	}
	// Output:
	// line one
	// line two
}

// ExampleSignCredential shows composing a conditional credential offline:
// read access to a subtree, but only outside office hours.
func ExampleSignCredential() {
	issuer := discfs.DeterministicKey("ex-issuer")
	holder := discfs.DeterministicKey("ex-holder")
	cred, err := discfs.SignCredential(issuer, discfs.CredentialSpec{
		Licensees:  discfs.LicenseesOr(holder.Principal),
		Conditions: discfs.SubtreeConditions(42, "R", true, `@hour < 9 || @hour >= 17`),
		Comment:    "off-hours read access",
	})
	if err != nil {
		log.Fatal(err)
	}
	parsed, err := discfs.ParseCredentials(cred.Source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(parsed), "credential parsed")
	fmt.Println("verified:", parsed[0].Verify() == nil)
	// Output:
	// 1 credential parsed
	// verified: true
}

// ExampleRegisterBackend plugs a custom storage backend into the
// registry and opens one of the built-in deduplicating variants, which
// are registered the same way.
func ExampleRegisterBackend() {
	err := discfs.RegisterBackend("mem-tiny", func(cfg discfs.StoreConfig) (discfs.FS, error) {
		return discfs.NewMemStore(discfs.WithBlockSize(4096), discfs.WithNumBlocks(512))
	})
	if err != nil {
		log.Fatal(err)
	}
	// Names are first-wins: a second claim is a typed error.
	dup := discfs.RegisterBackend("mem-tiny", func(cfg discfs.StoreConfig) (discfs.FS, error) {
		return discfs.NewMemStore()
	})
	fmt.Println("duplicate rejected:", errors.Is(dup, discfs.ErrBackendRegistered))

	// The content-addressed store stacks over either base backend.
	registered := map[string]bool{}
	for _, name := range discfs.Backends() {
		registered[name] = true
	}
	fmt.Println("ffs+dedup registered:", registered["ffs+dedup"])
	fmt.Println("mem+dedup registered:", registered["mem+dedup"])

	store, err := discfs.OpenBackend("ffs+dedup", discfs.WithBlockSize(4096), discfs.WithNumBlocks(4096))
	if err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte("the same sixteen bytes over and over "), 2000)
	for _, name := range []string{"copy-a", "copy-b"} {
		attr, err := store.Create(store.Root(), name, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := store.Write(attr.Handle, 0, payload); err != nil {
			log.Fatal(err)
		}
	}
	attr, err := store.Lookup(store.Root(), "copy-b")
	if err != nil {
		log.Fatal(err)
	}
	data, _, err := store.Read(attr.Handle, 0, uint32(len(payload)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("duplicate copy intact:", bytes.Equal(data, payload))
	// Output:
	// duplicate rejected: true
	// ffs+dedup registered: true
	// mem+dedup registered: true
	// duplicate copy intact: true
}

// ExampleNewMemStore builds the paper's storage stack and uses it
// directly as a local filesystem.
func ExampleNewMemStore() {
	store, err := discfs.NewMemStore(discfs.WithBlockSize(4096), discfs.WithNumBlocks(1024))
	if err != nil {
		log.Fatal(err)
	}
	root := store.Root()
	attr, err := store.Create(root, "hello.txt", 0o644)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.Write(attr.Handle, 0, []byte("local use")); err != nil {
		log.Fatal(err)
	}
	data, _, err := store.Read(attr.Handle, 0, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
	// Output:
	// local use
}
