package discfs_test

import (
	"fmt"
	"log"

	"discfs"
)

// Example_delegation walks the paper's Figure 1: the administrator
// delegates to Bob, Bob stores a file and delegates read access to
// Alice, Alice presents the credential and reads — no accounts anywhere.
func Example_delegation() {
	adminKey := discfs.DeterministicKey("ex-admin")
	store, err := discfs.NewMemStore(discfs.StoreConfig{})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := discfs.NewServer(discfs.ServerConfig{Backing: store, ServerKey: adminKey})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Start()
	if err != nil {
		log.Fatal(err)
	}

	// 1st certificate: administrator → Bob.
	bobKey := discfs.DeterministicKey("ex-bob")
	if _, err := srv.IssueCredential(bobKey.Principal, store.Root().Ino, "RWX", "bob"); err != nil {
		log.Fatal(err)
	}

	bob, err := discfs.Dial(addr, bobKey)
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()
	if _, _, err := bob.WriteFile("/paper.txt", []byte("shared by credential")); err != nil {
		log.Fatal(err)
	}

	// 2nd certificate: Bob → Alice (read + search on the tree).
	aliceKey := discfs.DeterministicKey("ex-alice")
	cred, err := bob.Delegate(aliceKey.Principal, store.Root().Ino, "RX", "for alice")
	if err != nil {
		log.Fatal(err)
	}

	alice, err := discfs.DialWithCredentials(addr, aliceKey, cred)
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	data, err := alice.ReadFile("/paper.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))

	// Alice's grant has no write bit.
	if _, _, err := alice.WriteFile("/paper.txt", []byte("vandalism")); err != nil {
		fmt.Println("write denied")
	}
	// Output:
	// shared by credential
	// write denied
}

// ExampleSignCredential shows composing a conditional credential offline:
// read access to a subtree, but only outside office hours.
func ExampleSignCredential() {
	issuer := discfs.DeterministicKey("ex-issuer")
	holder := discfs.DeterministicKey("ex-holder")
	cred, err := discfs.SignCredential(issuer, discfs.CredentialSpec{
		Licensees:  discfs.LicenseesOr(holder.Principal),
		Conditions: discfs.SubtreeConditions(42, "R", true, `@hour < 9 || @hour >= 17`),
		Comment:    "off-hours read access",
	})
	if err != nil {
		log.Fatal(err)
	}
	parsed, err := discfs.ParseCredentials(cred.Source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(parsed), "credential parsed")
	fmt.Println("verified:", parsed[0].Verify() == nil)
	// Output:
	// 1 credential parsed
	// verified: true
}

// ExampleNewMemStore builds the paper's storage stack and uses it
// directly as a local filesystem.
func ExampleNewMemStore() {
	store, err := discfs.NewMemStore(discfs.StoreConfig{BlockSize: 4096, NumBlocks: 1024})
	if err != nil {
		log.Fatal(err)
	}
	root := store.Root()
	attr, err := store.Create(root, "hello.txt", 0o644)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.Write(attr.Handle, 0, []byte("local use")); err != nil {
		log.Fatal(err)
	}
	data, _, err := store.Read(attr.Handle, 0, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
	// Output:
	// local use
}
