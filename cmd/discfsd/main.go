// Command discfsd is the DisCFS server daemon: the user-level
// credential-checked file server of the paper, exporting an FFS-style
// store (optionally CFS-encrypted) over the secure channel.
//
// Usage:
//
//	discfsd -addr :20049 -key server.key [-policy policy.kn] [-encrypt -passphrase s]
//
// On startup the daemon prints its administrator principal; grant access
// by signing credentials with that key (see cmd/keynote and cmd/discfs).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"discfs"
	"discfs/internal/fed"
	"discfs/internal/metrics"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:20049", "listen address")
		keyPath      = flag.String("key", "discfsd.key", "server (administrator) key file; created if missing")
		policyPath   = flag.String("policy", "", "additional KeyNote policy file")
		cacheSize    = flag.Int("cache", 128, "policy decision cache size (the paper used 128)")
		encrypt      = flag.Bool("encrypt", false, "enable CFS content/name encryption")
		passphrase   = flag.String("passphrase", "", "CFS passphrase (with -encrypt)")
		blockSize    = flag.Int("bs", 8192, "FFS block size")
		numBlocks    = flag.Uint("blocks", 1<<18, "FFS device size in blocks")
		auditFlag    = flag.Bool("audit", false, "write the audit log to stderr")
		writeBehind  = flag.Bool("write-behind", false, "server-side unstable writes: gather WRITEs and flush via COMMIT")
		dedupFlag    = flag.Bool("dedup", false, "content-addressed deduplicating store: chunk file data, store each unique chunk once (or pick a '+dedup' backend)")
		wbQueue      = flag.Int("wb-queue", 1024, "write-behind queue bound in 8 KiB blocks (with -write-behind)")
		wbCommitters = flag.Int("wb-committers", 2, "write-behind committer pool size (with -write-behind)")
		maxTransfer  = flag.Int("max-transfer", discfs.DefaultMaxTransfer, "largest negotiated READ/WRITE payload in bytes (8192 pins NFSv2-era transfers)")
		dirCursors   = flag.Int("dir-cursors", 0, "directory-cursor cache capacity: concurrent paged listings kept stable under mutation (0 = default 256)")
		imagePath    = flag.String("image", "", "filesystem image: loaded at startup if present, saved on SIGINT/SIGTERM")
		backend      = flag.String("backend", discfs.DefaultBackend, "storage backend (see discfs.Backends)")
		metricsAddr  = flag.String("metrics-addr", "", "serve Prometheus /metrics and /healthz on this address (empty disables)")
		limitRPS     = flag.Float64("limit-rps", 0, "per-principal sustained request rate (0 = unlimited)")
		limitInfl    = flag.Int("limit-inflight", 0, "per-principal in-flight request cap (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound: how long in-flight calls may finish on SIGTERM")
		fedSubtree   = flag.String("fed-subtree", "", "federation: pre-create this directory path at startup (every shard of a federated deployment must export the shard subtree; see the client's WithShardSubtree)")
		fedPeers     = flag.String("fed-peers", "", "federation: comma-separated peer server addresses for the server-to-server revocation feed (each peer must accept this server's key as an administrator; see -admins)")
		admins       = flag.String("admins", "", "comma-separated additional administrator principals (grant peer server keys admin so their revocation-feed pushes are accepted)")
	)
	flag.Parse()

	key, err := discfs.LoadOrCreateKey(*keyPath)
	if err != nil {
		log.Fatalf("discfsd: key: %v", err)
	}

	storeOpts := []discfs.StoreOption{
		discfs.WithBlockSize(*blockSize),
		discfs.WithNumBlocks(uint32(*numBlocks)),
	}
	if *encrypt {
		storeOpts = append(storeOpts, discfs.WithEncryption(*passphrase))
	}
	var store discfs.FS
	if *imagePath != "" {
		if _, statErr := os.Stat(*imagePath); statErr == nil {
			store, err = discfs.LoadStore(*imagePath, storeOpts...)
			if err != nil {
				log.Fatalf("discfsd: loading image: %v", err)
			}
			fmt.Printf("discfsd: restored filesystem image %s\n", *imagePath)
		}
	}
	if store == nil {
		store, err = discfs.OpenBackend(*backend, storeOpts...)
		if err != nil {
			log.Fatalf("discfsd: store: %v", err)
		}
	}

	if *fedSubtree != "" {
		// Every shard of a federated deployment must export the shard
		// subtree under the same path; create the chain idempotently so
		// freshly provisioned shards come up routable.
		dir := store.Root()
		for _, part := range strings.Split(*fedSubtree, "/") {
			if part == "" {
				continue
			}
			if a, lerr := store.Lookup(dir, part); lerr == nil {
				dir = a.Handle
				continue
			}
			a, merr := store.Mkdir(dir, part, 0o755)
			if merr != nil {
				log.Fatalf("discfsd: fed-subtree %s: %v", *fedSubtree, merr)
			}
			dir = a.Handle
		}
		fmt.Printf("discfsd: federation shard subtree %s ready\n", *fedSubtree)
	}

	opts := []discfs.ServerOption{
		discfs.WithBacking(store),
		discfs.WithCacheSize(*cacheSize),
		discfs.WithServerMaxTransfer(*maxTransfer),
	}
	if *dirCursors > 0 {
		opts = append(opts, discfs.WithServerDirCursors(*dirCursors))
	}
	if *writeBehind {
		opts = append(opts, discfs.WithServerWriteBehind(*wbQueue, *wbCommitters))
	}
	if *dedupFlag {
		opts = append(opts, discfs.WithServerDedup())
	}
	if *policyPath != "" {
		text, err := os.ReadFile(*policyPath)
		if err != nil {
			log.Fatalf("discfsd: policy: %v", err)
		}
		opts = append(opts, discfs.WithPolicyText(string(text)))
	}
	if *auditFlag {
		opts = append(opts, discfs.WithAudit(discfs.NewAuditLog(4096, os.Stderr)))
	}
	if *limitRPS > 0 || *limitInfl > 0 {
		opts = append(opts, discfs.WithServerLimits(*limitRPS, 0, *limitInfl))
	}
	if *fedPeers != "" {
		peers, err := fed.ParsePeers(*fedPeers)
		if err != nil {
			log.Fatalf("discfsd: -fed-peers: %v", err)
		}
		opts = append(opts, discfs.WithServerPeers(peers...))
	}
	if *admins != "" {
		var ps []discfs.Principal
		for _, p := range strings.Split(*admins, ",") {
			if p = strings.TrimSpace(p); p != "" {
				ps = append(ps, discfs.Principal(p))
			}
		}
		opts = append(opts, discfs.WithAdmins(ps...))
	}

	srv, err := discfs.NewServer(key, opts...)
	if err != nil {
		log.Fatalf("discfsd: %v", err)
	}
	fmt.Printf("discfsd: administrator principal:\n  %s\n", srv.Principal())
	fmt.Printf("discfsd: listening on %s\n", *addr)

	var msrv *metrics.HTTPServer
	if *metricsAddr != "" {
		msrv, err = metrics.Serve(*metricsAddr, srv.Metrics(), func() error {
			if srv.Draining() {
				return fmt.Errorf("draining")
			}
			return nil
		})
		if err != nil {
			log.Fatalf("discfsd: metrics: %v", err)
		}
		fmt.Printf("discfsd: metrics on http://%s/metrics\n", msrv.Addr())
	}

	// Graceful shutdown: drain in-flight calls (bounded), flush buffered
	// writes and the audit queue, dump the filesystem image, then exit.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigc
		fmt.Printf("discfsd: %v, draining (up to %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("discfsd: shutdown: %v", err)
		}
		cancel()
		if msrv != nil {
			msrv.Close()
		}
		if *imagePath != "" {
			if err := discfs.SaveStore(*imagePath, store); err != nil {
				log.Printf("discfsd: saving image: %v", err)
			} else {
				fmt.Printf("discfsd: saved filesystem image %s\n", *imagePath)
			}
		}
	}()

	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("discfsd: serve: %v", err)
	}
	<-done // serving stopped by the signal handler; wait for the dump
}
