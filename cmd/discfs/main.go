// Command discfs is the DisCFS client: the cattach-equivalent utility of
// the paper plus file operations and credential management.
//
//	discfs -server host:port -key me.key <subcommand> [args]
//
// Subcommands:
//
//	keygen                       create the key file and print the principal
//	whoami                       show the principal the server authenticated
//	ls [path]                    list a directory
//	cat <path>                   print a file
//	put <path>                   store stdin at path (prints the creator credential)
//	mkdir <path>                 create a directory (prints the creator credential)
//	rm <path>                    remove a file
//	submit <credfile>...         submit credential assertions to the server
//	issue <holder> <ino> <perm>  sign a delegation credential with this key
//	revoke-key <principal>       administrator: revoke a key
//	revoke-cred <sigfile>        administrator: revoke one credential
//	creds                        administrator: list session credentials
//	stats                        print policy-engine statistics
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"discfs"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: discfs -server host:port -key file <keygen|whoami|ls|cat|put|mkdir|rm|submit|issue|revoke-key|revoke-cred|creds|stats> [args]")
	os.Exit(2)
}

func main() {
	var (
		server  = flag.String("server", "127.0.0.1:20049", "DisCFS server address")
		keyPath = flag.String("key", "discfs.key", "identity key file")
		timeout = flag.Duration("timeout", 0, "overall deadline for the operation (0: none)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cmd, rest := args[0], args[1:]

	if cmd == "keygen" {
		key, err := discfs.LoadOrCreateKey(*keyPath)
		check(err)
		fmt.Printf("principal: %s\n", key.Principal)
		return
	}

	key, err := discfs.LoadOrCreateKey(*keyPath)
	check(err)

	if cmd == "issue" {
		// Offline operation: no server connection needed.
		if len(rest) != 3 {
			usage()
		}
		ino, err := strconv.ParseUint(rest[1], 10, 64)
		check(err)
		cred, err := discfs.SignCredential(key, discfs.CredentialSpec{
			Licensees:  discfs.LicenseesOr(discfs.Principal(rest[0])),
			Conditions: discfs.SubtreeConditions(ino, rest[2], true, ""),
			Comment:    "issued by discfs CLI",
		})
		check(err)
		fmt.Print(cred.Source)
		return
	}

	c, err := discfs.Dial(ctx, *server, key)
	check(err)
	defer c.Close()

	switch cmd {
	case "whoami":
		p, err := c.WhoAmI(ctx)
		check(err)
		fmt.Println(p)

	case "ls":
		path := "/"
		if len(rest) > 0 {
			path = rest[0]
		}
		ents, err := c.List(ctx, path)
		check(err)
		for _, e := range ents {
			fmt.Printf("%10d  %s\n", e.FileID, e.Name)
		}

	case "cat":
		if len(rest) != 1 {
			usage()
		}
		data, err := c.ReadFile(ctx, rest[0])
		check(err)
		os.Stdout.Write(data)

	case "put":
		if len(rest) != 1 {
			usage()
		}
		data, err := io.ReadAll(os.Stdin)
		check(err)
		attr, cred, err := c.WriteFile(ctx, rest[0], data)
		check(err)
		fmt.Fprintf(os.Stderr, "stored %s (ino %d, %d bytes)\n", rest[0], attr.Handle.Ino, len(data))
		if cred != "" {
			fmt.Print(cred)
		}

	case "mkdir":
		if len(rest) != 1 {
			usage()
		}
		attr, cred, err := c.MkdirPath(ctx, rest[0])
		check(err)
		fmt.Fprintf(os.Stderr, "created %s (ino %d)\n", rest[0], attr.Handle.Ino)
		fmt.Print(cred)

	case "rm":
		if len(rest) != 1 {
			usage()
		}
		dirAttr, name, err := splitForRemove(ctx, c, rest[0])
		check(err)
		check(c.NFS().Remove(ctx, dirAttr, name))

	case "submit":
		if len(rest) == 0 {
			usage()
		}
		total := 0
		for _, f := range rest {
			text, err := os.ReadFile(f)
			check(err)
			n, err := c.SubmitCredentialText(ctx, string(text))
			check(err)
			total += n
		}
		fmt.Printf("submitted %d credential(s)\n", total)

	case "revoke-key":
		if len(rest) != 1 {
			usage()
		}
		n, err := c.RevokeKey(ctx, discfs.Principal(rest[0]))
		check(err)
		fmt.Printf("revoked; %d credential(s) dropped\n", n)

	case "revoke-cred":
		if len(rest) != 1 {
			usage()
		}
		text, err := os.ReadFile(rest[0])
		check(err)
		creds, err := discfs.ParseCredentials(string(text))
		check(err)
		for _, cr := range creds {
			found, err := c.RevokeCredential(ctx, cr.SignatureValue)
			check(err)
			fmt.Printf("revoked (present: %v)\n", found)
		}

	case "creds":
		list, err := c.ListCredentials(ctx)
		check(err)
		for i, cr := range list {
			fmt.Printf("# credential %d\n%s\n", i+1, cr)
		}

	case "stats":
		st, err := c.ServerStats(ctx)
		check(err)
		fmt.Printf("compliance queries: %d\ncache hits:         %d\ncache misses:       %d\ncredentials:        %d\ndecisions:          %d\ndenials:            %d\n",
			st.Queries, st.CacheHits, st.CacheMisses, st.Credentials, st.Decisions, st.Denials)
		fmt.Printf("writes gathered:    %d\nbackend writes:     %d\ncommits:            %d\nwrite queue depth:  %d\n",
			st.WritesGathered, st.BackendWrites, st.Commits, st.WriteQueueDepth)

	default:
		usage()
	}
}

// splitForRemove resolves the parent directory handle and leaf name.
func splitForRemove(ctx context.Context, c *discfs.Client, path string) (discfs.Handle, string, error) {
	dir := "/"
	name := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			dir, name = path[:i], path[i+1:]
			break
		}
	}
	if dir == "" {
		dir = "/"
	}
	attr, err := c.ResolvePath(ctx, dir)
	if err != nil {
		return discfs.Handle{}, "", err
	}
	return attr.Handle, name, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "discfs: %v\n", err)
		os.Exit(1)
	}
}
