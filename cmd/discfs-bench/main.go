// Command discfs-bench regenerates the paper's evaluation (§6): the five
// Bonnie figures (7-11), the filesystem search macro-benchmark
// (Figure 12), the parallel authorization-check scaling table (the
// Fig 8/9 cost, measured under concurrency), and the access-control
// micro-benchmarks, printing one table per figure with rows for FFS,
// CFS-NE and DisCFS.
//
//	discfs-bench [-size 16] [-runs 3] [-tree-files 1536] [-authz-ops 200000]
//
// Absolute numbers depend on the host; the result that reproduces the
// paper is the *shape*: FFS far ahead of both user-level NFS systems,
// and CFS-NE ≈ DisCFS (credential checks are almost free once policy
// results are cached).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"discfs/internal/bench"
	"discfs/internal/keynote"
)

// benchRow is one (configuration, value) pair of a figure's table.
type benchRow struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// benchFigure is the machine-readable form of one table, written as
// BENCH_<figure>.json so the perf trajectory is tracked across PRs.
type benchFigure struct {
	Figure string     `json:"figure"`
	Title  string     `json:"title"`
	Unit   string     `json:"unit"`
	Rows   []benchRow `json:"rows"`
}

// jsonDir is the -json-dir flag; empty disables emission.
var jsonDir string

// emitJSON writes one figure's JSON file next to the table output.
func emitJSON(figure, title, unit string, rows []benchRow) {
	if jsonDir == "" {
		return
	}
	data, err := json.MarshalIndent(benchFigure{Figure: figure, Title: title, Unit: unit, Rows: rows}, "", "  ")
	if err != nil {
		check(err)
	}
	check(os.MkdirAll(jsonDir, 0o755))
	path := filepath.Join(jsonDir, "BENCH_"+figure+".json")
	check(os.WriteFile(path, append(data, '\n'), 0o644))
}

func main() {
	var (
		sizeMB    = flag.Int("size", 16, "Bonnie file size in MiB (paper: 100)")
		runs      = flag.Int("runs", 3, "measurement runs per figure (best reported)")
		subsys    = flag.Int("tree-dirs", 24, "search tree: subsystem directories")
		perDir    = flag.Int("tree-files", 64, "search tree: files per directory")
		meanSize  = flag.Int("tree-mean", 12*1024, "search tree: mean file size")
		authzOps  = flag.Int("authz-ops", 200000, "authorization benchmark: cached checks per run")
		pwSizeKB  = flag.Int("pw-size", 1024, "parallel write benchmark: KiB per writer")
		streamMax = flag.Int("stream-max", 64, "streaming table: largest file size in MiB (sizes step 8x from 1: 1, 8, 64)")
		soak      = flag.Bool("soak", false, "run the operations-plane soak instead of the figures")
		soakDur   = flag.Duration("soak-duration", 10*time.Second, "soak measurement window (with -soak)")
		soakWk    = flag.Int("soak-workers", 32, "soak concurrent session-churning workers (with -soak)")
		soakHot   = flag.Float64("soak-hot-rps", 50, "soak hot-principal rate cap in req/s (with -soak)")
		dedupOnly = flag.Bool("dedup", false, "run only the dedup table (CI gate + artifact)")
		dedupPct  = flag.Int("dedup-dup-pct", 90, "dedup table: duplicate fraction of the headline stream, in percent")
		dedupMB   = flag.Int("dedup-size", 8, "dedup table: MiB streamed per writer")
	)
	flag.StringVar(&jsonDir, "json-dir", ".", "directory for BENCH_<figure>.json files (empty disables)")
	flag.Parse()
	if *soak {
		runSoak(*soakDur, *soakWk, *soakHot)
		return
	}
	if *dedupOnly {
		printDedupHeader()
		dedupTable(*dedupPct, int64(*dedupMB)<<20)
		return
	}
	size := int64(*sizeMB) << 20

	fmt.Printf("DisCFS evaluation — Bonnie file %d MiB, search tree %d dirs × %d files, %d run(s)\n\n",
		*sizeMB, *subsys, *perDir, *runs)

	// ---- Figures 7-11: Bonnie ----
	type row struct {
		name string
		res  bench.BonnieResult
	}
	var rows []row
	for _, mk := range []func() (*bench.Setup, error){
		bench.SetupFFS, bench.SetupCFSNE, bench.SetupDisCFS, bench.SetupDisCFSNoCache,
	} {
		s, err := mk()
		check(err)
		best := bench.BonnieResult{}
		for r := 0; r < *runs; r++ {
			res, err := bench.Bonnie(s.FS, s.FS.Root(), size)
			check(err)
			best = maxResult(best, res)
		}
		rows = append(rows, row{s.Name, best})
		s.Close()
	}

	figures := []struct {
		fig   string
		title string
		get   func(bench.BonnieResult) float64
	}{
		{"Fig7", "Figure 7: Bonnie Sequential Output (Char)", func(r bench.BonnieResult) float64 { return r.OutputCharKBps }},
		{"Fig8", "Figure 8: Bonnie Sequential Output (Block)", func(r bench.BonnieResult) float64 { return r.OutputBlockKBps }},
		{"Fig9", "Figure 9: Bonnie Sequential Output (Rewrite)", func(r bench.BonnieResult) float64 { return r.RewriteKBps }},
		{"Fig10", "Figure 10: Bonnie Sequential Input (Char)", func(r bench.BonnieResult) float64 { return r.InputCharKBps }},
		{"Fig11", "Figure 11: Bonnie Sequential Input (Block)", func(r bench.BonnieResult) float64 { return r.InputBlockKBps }},
	}
	for _, fig := range figures {
		fmt.Println(fig.title)
		fmt.Println("  Filesystem   Throughput (KB/sec)")
		base := fig.get(rows[1].res) // CFS-NE is the base case
		var jrows []benchRow
		for _, r := range rows {
			v := fig.get(r.res)
			note := ""
			if r.name == "DisCFS" && base > 0 {
				note = fmt.Sprintf("   (%.1f%% of CFS-NE)", v/base*100)
			}
			fmt.Printf("  %-10s %12.0f%s\n", r.name, v, note)
			jrows = append(jrows, benchRow{Name: r.name, Value: v})
		}
		emitJSON(fig.fig, fig.title, "KB/s", jrows)
		fmt.Println()
	}

	// ---- Figure 12: filesystem search ----
	fmt.Println("Figure 12: Filesystem Search (wc over every .c/.h file)")
	fmt.Println("  Filesystem   Time (sec)")
	spec := bench.TreeSpec{Subsystems: *subsys, FilesPerDir: *perDir, MeanFileSize: *meanSize, Seed: 2001}
	var searchBase time.Duration
	var searchRows []benchRow
	for _, mk := range []func() (*bench.Setup, error){
		bench.SetupFFS, bench.SetupCFSNE, bench.SetupDisCFS,
	} {
		s, err := mk()
		check(err)
		files, bytes, err := bench.GenerateTree(s.Populate, s.Populate.Root(), spec)
		check(err)
		bestD := time.Duration(1<<62 - 1)
		var res bench.SearchResult
		for r := 0; r < *runs; r++ {
			start := time.Now()
			res, err = bench.Search(s.FS, s.FS.Root())
			check(err)
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		note := ""
		if s.Name == "CFS-NE" {
			searchBase = bestD
		}
		if s.Name == "DisCFS" && searchBase > 0 {
			note = fmt.Sprintf("   (%.1f%% of CFS-NE)", float64(bestD)/float64(searchBase)*100)
		}
		fmt.Printf("  %-10s %12.2f%s\n", s.Name, bestD.Seconds(), note)
		searchRows = append(searchRows, benchRow{Name: s.Name, Value: bestD.Seconds()})
		if s.Stats != nil {
			st := s.Stats()
			fmt.Printf("             [%d files, %d bytes walked; policy: %d queries, %d cache hits]\n",
				files, bytes, st.Queries, st.CacheHits)
		}
		s.Close()
		_ = res
	}
	emitJSON("Fig12", "Figure 12: Filesystem Search", "sec", searchRows)
	fmt.Println()

	// ---- Streaming throughput: negotiated vs baseline transfers ----
	fmt.Println("Streaming throughput (sequential write+read over the wire; 512 KiB negotiated vs 8 KiB baseline)")
	fmt.Println("  Config                    Size    Write MB/s    Read MB/s    Aggregate")
	streamTable(int64(*streamMax) << 20)
	fmt.Println()

	// ---- Metadata plane: batched walk/stat vs per-name RPCs ----
	fmt.Println("Metadata walk/stat (10k-entry tree; per-name LOOKUP walk vs batched READDIRPLUS walk)")
	fmt.Println("  Walk                Time (sec)")
	metaTable(*runs)
	fmt.Println()

	// ---- Federation scale-out: aggregate throughput vs servers ----
	fmt.Println("Federation scale-out (aggregate streaming write, device-bound servers, sharded /data)")
	fmt.Println("  Servers   Writers   Aggregate MB/s")
	fedTable()
	fmt.Println()

	// ---- Dedup: content-addressed store vs raw at varying duplication ----
	printDedupHeader()
	dedupTable(*dedupPct, int64(*dedupMB)<<20)
	fmt.Println()

	// ---- Parallel multi-client write scaling ----
	fmt.Println("Parallel write throughput (8 KiB blocks, one file per writer, seek-model disk)")
	fmt.Println("  Setup            Writers   Aggregate KB/s")
	parallelWriteTable(int64(*pwSizeKB) << 10)
	fmt.Println()

	// ---- Authorization scaling (Fig 8/9-style, parallel) ----
	fmt.Println("Authorization check throughput (server check path, 32 principals, 128 credentials)")
	fmt.Println("  Mode       Goroutines   Checks/sec")
	authzScaling(*authzOps)
	fmt.Println()

	// ---- Micro-benchmarks ----
	fmt.Println("Micro-benchmarks: access-control primitives")
	microCredential()
	fmt.Println()
	fmt.Println("run `go test -bench=Micro -benchmem` for the full suite " +
		"(handshake, null RPC, cached decisions, submission)")
}

// runSoak drives the operations-plane soak (metrics, admission control,
// revocation, connection cuts, graceful drain) and emits BENCH_ops.json.
// The two numbers CI gates on are audit_dropped and bufpool_outstanding:
// both must be zero after a full churn-and-drain cycle.
func runSoak(dur time.Duration, workers int, hotRPS float64) {
	res, err := bench.RunSoak(bench.SoakOptions{
		Duration: dur, Workers: workers, HotRPS: hotRPS,
		Log: func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	check(err)
	fmt.Printf("\nSoak (%d workers, %v):\n", res.Workers, dur)
	fmt.Printf("  sessions established: %10d\n", res.Sessions)
	fmt.Printf("  ops completed:        %10d (%.0f/s)\n", res.Ops, res.OpsPerSec)
	fmt.Printf("  hot/cold split:       %10d / %d\n", res.HotOps, res.ColdOps)
	fmt.Printf("  throttled:            %10d client, %d+%d server (rate+concurrency)\n",
		res.Throttled, res.ServerThrottledRate, res.ServerThrottledConc)
	fmt.Printf("  revocation errors:    %10d (expected after mid-run revoke)\n", res.RevokedErr)
	fmt.Printf("  connection cuts:      %10d\n", res.Cuts)
	fmt.Printf("  unexpected errors:    %10d\n", res.Errors)
	if res.ErrSample != "" {
		fmt.Printf("    first: %s\n", res.ErrSample)
	}
	fmt.Printf("  server latency:       %10.3f ms p50, %.3f ms p99\n", res.P50ms, res.P99ms)
	fmt.Printf("  /metrics scrape:      %10d bytes mid-run\n", res.ScrapeLen)
	fmt.Printf("  audit dropped:        %10d (leak gate)\n", res.AuditDropped)
	fmt.Printf("  bufpool outstanding:  %10d (leak gate)\n", res.BufpoolOutstanding)
	fmt.Printf("  fed victims fenced:   %10d on every server via the feed\n", res.FedRevoked)
	fmt.Printf("  feed propagated:      %10d entries pushed to peers\n", res.FeedPropagated)
	fmt.Printf("  feed lag:             %10d unacked at drain (convergence gate)\n", res.FeedLag)
	fmt.Printf("  dedup churn ops:      %10d (%d chunks live, %d hits, %d reclaimed)\n",
		res.DedupOps, res.DedupChunks, res.DedupHits, res.DedupReclaimed)
	fmt.Printf("  dedup ref leaks:      %10d (leak gate)\n", res.DedupRefLeaks)
	if res.DrainErr != "" {
		check(fmt.Errorf("soak: %s", res.DrainErr))
	}
	emitJSON("ops", "Operations-plane soak", "mixed", []benchRow{
		{Name: "sessions", Value: float64(res.Sessions)},
		{Name: "ops_per_sec", Value: res.OpsPerSec},
		{Name: "p50_ms", Value: res.P50ms},
		{Name: "p99_ms", Value: res.P99ms},
		{Name: "throttled_client", Value: float64(res.Throttled)},
		{Name: "throttled_rate", Value: float64(res.ServerThrottledRate)},
		{Name: "throttled_concurrency", Value: float64(res.ServerThrottledConc)},
		{Name: "revoked_errs", Value: float64(res.RevokedErr)},
		{Name: "cuts", Value: float64(res.Cuts)},
		{Name: "errors", Value: float64(res.Errors)},
		{Name: "scrape_bytes", Value: float64(res.ScrapeLen)},
		{Name: "audit_dropped", Value: float64(res.AuditDropped)},
		{Name: "bufpool_outstanding", Value: float64(res.BufpoolOutstanding)},
		{Name: "fed_revoked", Value: float64(res.FedRevoked)},
		{Name: "revocations_propagated", Value: float64(res.FeedPropagated)},
		{Name: "feed_lag", Value: float64(res.FeedLag)},
		{Name: "dedup_ops", Value: float64(res.DedupOps)},
		{Name: "dedup_hits", Value: float64(res.DedupHits)},
		{Name: "dedup_gc_reclaimed", Value: float64(res.DedupReclaimed)},
		{Name: "dedup_ref_leaks", Value: float64(res.DedupRefLeaks)},
	})
}

// authzScaling prints the parallel compliance-check throughput table:
// cached (the paper's 128-entry decision cache) and uncached (full
// KeyNote evaluation per check) at 1, 4 and 8 goroutines.
func authzScaling(ops int) {
	var jrows []benchRow
	for _, mode := range []struct {
		name      string
		cacheSize int
		ops       int
	}{
		{"cached", 128, ops},
		{"uncached", -1, ops / 20},
	} {
		a, err := bench.NewAuthzSetup(32, mode.cacheSize, 96)
		check(err)
		for _, g := range []int{1, 4, 8} {
			a.RunAuthz(g, 2) // warm: one decision per (peer, handle)
			res := a.RunAuthz(g, mode.ops/g+1)
			fmt.Printf("  %-10s %10d %12.0f\n", mode.name, g, res.OpsPerSec())
			jrows = append(jrows, benchRow{Name: fmt.Sprintf("%s/%dg", mode.name, g), Value: res.OpsPerSec()})
		}
		a.Close()
	}
	emitJSON("Authz", "Authorization check throughput", "checks/s", jrows)
}

// parallelWriteTable prints (and emits) the multi-client write scaling
// table: the global-lock baseline, the concurrent FFS write path, and
// the full DisCFS client-server path with server write-behind off/on.
func parallelWriteTable(perWriter int64) {
	var jrows []benchRow
	emit := func(name string, writers int, res bench.ParallelWriteResult) {
		fmt.Printf("  %-16s %7d %16.0f\n", name, writers, res.KBps())
		jrows = append(jrows, benchRow{Name: fmt.Sprintf("%s/%dw", name, writers), Value: res.KBps()})
	}
	for _, writers := range []int{1, 8} {
		views, _, err := bench.NewParallelFFSSerial(writers)
		check(err)
		res, err := bench.ParallelWrite(views, perWriter)
		check(err)
		emit("FFS-globallock", writers, res)

		views, fs, err := bench.NewParallelFFS(writers)
		check(err)
		res, err = bench.ParallelWrite(views, perWriter)
		check(err)
		if errs := fs.Check(); len(errs) != 0 {
			check(fmt.Errorf("fsck after parallel write: %v", errs[0]))
		}
		emit("FFS", writers, res)

		for _, wb := range []bool{false, true} {
			views, _, closeAll, err := bench.NewParallelDisCFS(writers, wb)
			check(err)
			res, err := bench.ParallelWrite(views, perWriter)
			check(err)
			closeAll()
			name := "DisCFS"
			if wb {
				name = "DisCFS-wb"
			}
			emit(name, writers, res)
		}
	}
	emitJSON("ParallelWrite", "Parallel multi-client write throughput", "KB/s", jrows)
}

// streamTable prints (and emits as BENCH_stream.json) the streaming
// throughput table: sequential write-then-read of 1 MiB–maxSize files,
// cached and uncached, at the negotiated 512 KiB transfer versus the
// v2 8 KiB baseline. The aggregate column is total bytes over total
// wall time; the data plane's acceptance bound is the 512 KiB aggregate
// reaching 3x the 8 KiB one.
func streamTable(maxSize int64) {
	s, err := bench.NewStreamSetup()
	check(err)
	defer s.Close()
	var jrows []benchRow
	for size := int64(1 << 20); size <= maxSize; size *= 8 {
		for _, cfg := range []struct {
			name     string
			transfer int
			cached   bool
		}{
			{"8KiB-uncached", 8192, false},
			{"512KiB-uncached", 512 << 10, false},
			{"8KiB-cached", 8192, true},
			{"512KiB-cached", 512 << 10, true},
		} {
			res, err := s.Stream(size, cfg.transfer, cfg.cached)
			check(err)
			label := fmt.Sprintf("%s/%dMiB", cfg.name, size>>20)
			fmt.Printf("  %-22s %5dMiB %12.1f %12.1f %12.1f\n",
				cfg.name, size>>20, res.WriteMBps, res.ReadMBps, bench.AggregateMBps(res))
			jrows = append(jrows,
				benchRow{Name: label + "/write", Value: res.WriteMBps},
				benchRow{Name: label + "/read", Value: res.ReadMBps},
				benchRow{Name: label + "/aggregate", Value: bench.AggregateMBps(res)})
		}
	}
	emitJSON("stream", "Streaming throughput: negotiated vs baseline transfer size", "MB/s", jrows)
}

// fedTable prints (and emits as BENCH_fed.json) the horizontal
// scale-out curve: aggregate write throughput of a federated client
// spreading disjoint working sets across 1, 2 and 3 servers, each on
// its own Exclusive modeled disk. The acceptance bound is 3 servers
// reaching 2.4x the single server.
func fedTable() {
	results, err := bench.RunFed([]int{1, 2, 3}, 6, 4<<20)
	check(err)
	var jrows []benchRow
	single := results[0].AggregateMBps
	for _, r := range results {
		note := ""
		if r.Servers > 1 && single > 0 {
			note = fmt.Sprintf("   (%.2fx)", r.AggregateMBps/single)
		}
		fmt.Printf("  %7d %9d %16.1f%s\n", r.Servers, r.Writers, r.AggregateMBps, note)
		jrows = append(jrows, benchRow{Name: fmt.Sprintf("%dsrv", r.Servers), Value: r.AggregateMBps})
	}
	if single > 0 {
		jrows = append(jrows, benchRow{Name: "speedup3", Value: results[len(results)-1].AggregateMBps / single})
	}
	emitJSON("fed", "Federation scale-out: aggregate write throughput vs servers", "MB/s", jrows)
}

func printDedupHeader() {
	fmt.Println("Dedup streaming write (content-addressed store vs raw, device-bound server, shared-segment streams)")
	fmt.Println("  Config            Dup%   Writers   Aggregate MB/s      Stored/Logical")
}

// dedupTable prints (and emits as BENCH_dedup.json) the dedup table:
// aggregate streaming write throughput through the full write-behind
// stack onto one exclusive modeled disk, without the content-addressed
// layer (baseline, measured on the duplicate-heavy stream) and with it
// at 0%, 50% and dupPct% duplicate segments. The acceptance bound is
// the dedup config at dupPct (default 90) reaching 3x the baseline —
// duplicate chunks never touch the spindle, so saved writes are saved
// wall-clock time.
func dedupTable(dupPct int, perWriter int64) {
	pcts := []int{0, 50}
	if dupPct != 0 && dupPct != 50 {
		pcts = append(pcts, dupPct)
	}
	const writers = 3
	results, err := bench.RunDedup(pcts, writers, perWriter)
	check(err)
	var jrows []benchRow
	base := results[0].AggregateMBps
	for _, r := range results {
		name := "raw"
		note := ""
		ratio := "-"
		if r.Dedup {
			name = "dedup"
			if base > 0 {
				note = fmt.Sprintf("   (%.2fx)", r.AggregateMBps/base)
			}
		}
		if r.BytesLogical > 0 {
			ratio = fmt.Sprintf("%.0f%%", float64(r.BytesStored)/float64(r.BytesLogical)*100)
		}
		fmt.Printf("  %-16s %5d %9d %16.1f%-10s %8s\n", name, r.DupPct, r.Writers, r.AggregateMBps, note, ratio)
		jrows = append(jrows, benchRow{Name: fmt.Sprintf("%s/%dpct", name, r.DupPct), Value: r.AggregateMBps})
	}
	last := results[len(results)-1]
	if base > 0 {
		jrows = append(jrows, benchRow{Name: "speedup", Value: last.AggregateMBps / base})
	}
	if last.BytesLogical > 0 {
		jrows = append(jrows, benchRow{Name: "stored_ratio", Value: float64(last.BytesStored) / float64(last.BytesLogical)})
	}
	emitJSON("dedup", "Dedup streaming write: content-addressed store vs raw", "MB/s", jrows)
}

// metaTable prints (and emits as BENCH_meta.json) the metadata-plane
// comparison: walking and stat'ing the 10k-entry tree with one LOOKUP
// RPC per name versus batched READDIRPLUS pages with piggybacked
// attributes. The acceptance bound is the batched walk reaching 5x.
func metaTable(runs int) {
	res, err := bench.Meta(bench.MetaTreeSpec, runs)
	check(err)
	fmt.Printf("  %-18s %12.3f\n", "per-name", res.LegacySec)
	fmt.Printf("  %-18s %12.3f   (%.1fx)\n", "readdirplus", res.PlusSec, res.Speedup)
	emitJSON("meta", "Metadata walk/stat: batched READDIRPLUS vs per-name LOOKUP", "sec", []benchRow{
		{Name: "per-name-sec", Value: res.LegacySec},
		{Name: "readdirplus-sec", Value: res.PlusSec},
		{Name: "speedup", Value: res.Speedup},
		{Name: "files", Value: float64(res.Files)},
		{Name: "dirs", Value: float64(res.Dirs)},
	})
}

// microCredential times parse / verify / sign / query inline.
func microCredential() {
	admin := keynote.DeterministicKey("bench-admin")
	bob := keynote.DeterministicKey("bench-bob")
	cred, err := keynote.Sign(admin, keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" && (HANDLE == "42" || PATH ~= "/42/") -> "RWX";`,
	})
	check(err)
	time1 := timeIt(func() { _, _ = keynote.ParseAssertion(cred.Source) })
	time2 := timeIt(func() {
		a, _ := keynote.ParseAssertion(cred.Source)
		_ = a.Verify()
	})
	time3 := timeIt(func() {
		_, _ = keynote.Sign(admin, keynote.AssertionSpec{
			Licensees:  keynote.LicenseesOr(bob.Principal),
			Conditions: `HANDLE == "42" -> "R";`,
		})
	})
	session, err := keynote.NewSession([]string{"false", "X", "W", "WX", "R", "RX", "RW", "RWX"})
	check(err)
	check(session.AddPolicyText("Authorizer: \"POLICY\"\nLicensees: \"" +
		string(admin.Principal) + "\"\nConditions: app_domain == \"DisCFS\" -> _MAX_TRUST;\n"))
	check2(session.AddCredentialText(cred.Source))
	attrs := map[string]string{"app_domain": "DisCFS", "HANDLE": "42", "PATH": "/1/42/"}
	time4 := timeIt(func() { _, _ = session.Query(attrs, bob.Principal) })

	fmt.Printf("  credential parse:              %10s\n", time1)
	fmt.Printf("  credential parse+verify:       %10s\n", time2)
	fmt.Printf("  credential compose+sign:       %10s\n", time3)
	fmt.Printf("  compliance query (chain of 2): %10s\n", time4)
}

// timeIt reports the per-op time of fn over a short calibration loop.
func timeIt(fn func()) time.Duration {
	const warm = 16
	for i := 0; i < warm; i++ {
		fn()
	}
	n := 256
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(n)
}

func maxResult(a, b bench.BonnieResult) bench.BonnieResult {
	m := func(x, y float64) float64 {
		if x > y {
			return x
		}
		return y
	}
	return bench.BonnieResult{
		OutputCharKBps:  m(a.OutputCharKBps, b.OutputCharKBps),
		OutputBlockKBps: m(a.OutputBlockKBps, b.OutputBlockKBps),
		RewriteKBps:     m(a.RewriteKBps, b.RewriteKBps),
		InputCharKBps:   m(a.InputCharKBps, b.InputCharKBps),
		InputBlockKBps:  m(a.InputBlockKBps, b.InputBlockKBps),
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "discfs-bench: %v\n", err)
		os.Exit(1)
	}
}

func check2(_ any, err error) { check(err) }
