// Command keynote is a standalone trust-management utility in the spirit
// of the OpenBSD keynote(1) tool: generate keys, sign credential
// assertions, verify them, and run compliance queries — all offline.
//
//	keynote keygen -out me.key
//	keynote sign -key me.key -licensee <principal> -conditions '...' [-comment s]
//	keynote verify cred.kn ...
//	keynote query -policy policy.kn [-cred cred.kn ...] \
//	    -requester <principal> [-attr k=v ...] [-values "false,...,RWX"]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"discfs"
	"discfs/internal/keynote"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: keynote <keygen|sign|verify|query> [flags]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "keygen":
		keygen(os.Args[2:])
	case "sign":
		sign(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	case "query":
		query(os.Args[2:])
	default:
		usage()
	}
}

func keygen(args []string) {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	out := fs.String("out", "keynote.key", "output key file")
	fs.Parse(args)
	key, err := discfs.GenerateKey()
	check(err)
	check(discfs.SaveKey(*out, key))
	fmt.Printf("wrote %s\nprincipal: %s\n", *out, key.Principal)
}

func sign(args []string) {
	fs := flag.NewFlagSet("sign", flag.ExitOnError)
	keyPath := fs.String("key", "keynote.key", "signing key file")
	licensees := fs.String("licensee", "", "licensee principal(s), comma separated")
	conditions := fs.String("conditions", "", "Conditions field body")
	comment := fs.String("comment", "", "Comment field")
	fs.Parse(args)
	if *licensees == "" {
		fmt.Fprintln(os.Stderr, "keynote sign: -licensee required")
		os.Exit(2)
	}
	key, err := discfs.LoadKey(*keyPath)
	check(err)
	var ps []keynote.Principal
	for _, l := range strings.Split(*licensees, ",") {
		ps = append(ps, keynote.Principal(strings.TrimSpace(l)))
	}
	cred, err := keynote.Sign(key, keynote.AssertionSpec{
		Licensees:  keynote.LicenseesOr(ps...),
		Conditions: *conditions,
		Comment:    *comment,
	})
	check(err)
	fmt.Print(cred.Source)
}

func verify(args []string) {
	bad := 0
	for _, path := range args {
		text, err := os.ReadFile(path)
		check(err)
		creds, err := keynote.ParseAssertions(string(text))
		if err != nil {
			fmt.Printf("%s: PARSE ERROR: %v\n", path, err)
			bad++
			continue
		}
		for i, c := range creds {
			if err := c.Verify(); err != nil {
				fmt.Printf("%s[%d]: INVALID: %v\n", path, i, err)
				bad++
			} else {
				fmt.Printf("%s[%d]: OK (authorizer %s)\n", path, i, c.Authorizer.Short())
			}
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

type attrList map[string]string

func (a attrList) String() string { return "" }
func (a attrList) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("attribute %q is not k=v", v)
	}
	a[k] = val
	return nil
}

type fileList []string

func (f *fileList) String() string { return "" }
func (f *fileList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func query(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	policyPath := fs.String("policy", "", "policy assertion file (Authorizer: POLICY)")
	requester := fs.String("requester", "", "requesting principal")
	valuesFlag := fs.String("values", strings.Join(discfs.Values, ","), "ordered compliance values")
	attrs := attrList{}
	fs.Var(attrs, "attr", "action attribute k=v (repeatable)")
	var credPaths fileList
	fs.Var(&credPaths, "cred", "credential file (repeatable)")
	fs.Parse(args)
	if *policyPath == "" || *requester == "" {
		fmt.Fprintln(os.Stderr, "keynote query: -policy and -requester required")
		os.Exit(2)
	}
	values := strings.Split(*valuesFlag, ",")
	session, err := keynote.NewSession(values)
	check(err)
	ptext, err := os.ReadFile(*policyPath)
	check(err)
	check(session.AddPolicyText(string(ptext)))
	for _, p := range credPaths {
		text, err := os.ReadFile(p)
		check(err)
		_, err = session.AddCredentialText(string(text))
		check(err)
	}
	res, err := session.Query(attrs, keynote.Principal(*requester))
	check(err)
	fmt.Printf("compliance value: %s (index %d of %d)\n", res.Value, res.Index, len(values)-1)
	if res.Index == 0 {
		os.Exit(1)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "keynote: %v\n", err)
		os.Exit(1)
	}
}
